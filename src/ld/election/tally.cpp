#include "ld/election/tally.hpp"

#include <cmath>
#include <optional>
#include <vector>

#include "prob/normal.hpp"
#include "prob/truncated.hpp"
#include "prob/weighted_bernoulli_sum.hpp"
#include "support/expect.hpp"
#include "support/metrics.hpp"

namespace ld::election {

using delegation::DelegationOutcome;
using mech::ActionKind;
using support::expects;

namespace {

/// Collect (weight, competency) pairs of the voting sinks into the given
/// buffers (cleared first).
void sink_profile_into(const DelegationOutcome& outcome,
                       const model::CompetencyVector& p,
                       std::vector<std::uint64_t>& weights,
                       std::vector<double>& probs) {
    weights.clear();
    probs.clear();
    const auto& w = outcome.weights();
    for (graph::Vertex s : outcome.voting_sinks()) {
        weights.push_back(w[s]);
        probs.push_back(p[s]);
    }
}

/// Realize every voter's effective vote (std::nullopt = abstained) into
/// `vote`.  Votes propagate along delegation arcs in reverse topological
/// order (`order` as produced by Digraph::topological_order).
void realize_votes_into(const DelegationOutcome& outcome,
                        const model::CompetencyVector& p, rng::Rng& rng,
                        std::span<const graph::Vertex> order,
                        std::vector<std::optional<bool>>& vote) {
    const std::size_t n = outcome.voter_count();
    vote.assign(n, std::nullopt);
    // Process targets before sources: reverse topological order.
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
        const graph::Vertex v = *it;
        const mech::Action& a = outcome.action(v);
        switch (a.kind) {
            case ActionKind::Abstain:
                vote[v] = std::nullopt;
                break;
            case ActionKind::Vote:
                vote[v] = rng.next_bernoulli(p[v]);
                break;
            case ActionKind::Delegate: {
                // Weighted majority over the delegates' realized votes
                // (§6's locally defined weight function; uniform when the
                // action carries no weights).
                double correct = 0.0, cast = 0.0;
                for (std::size_t i = 0; i < a.targets.size(); ++i) {
                    const graph::Vertex t = a.targets[i];
                    if (t == v) continue;  // self-delegation = voting
                    if (!vote[t].has_value()) continue;  // abstained delegate
                    const double w =
                        a.target_weights.empty() ? 1.0 : a.target_weights[i];
                    cast += w;
                    if (*vote[t]) correct += w;
                }
                if (cast == 0.0) {
                    // Self-delegation, or every delegate abstained: fall
                    // back to the voter's own competency draw.
                    vote[v] = rng.next_bernoulli(p[v]);
                } else if (correct * 2.0 == cast) {
                    // Weighted tie: break with the voter's own draw.
                    vote[v] = rng.next_bernoulli(p[v]);
                } else {
                    vote[v] = correct * 2.0 > cast;
                }
                break;
            }
        }
    }
}

/// Normal-approximation tail over a sink profile (shared by both approx
/// overloads once the profile buffers are filled).
double approx_majority_from_profile(std::span<const std::uint64_t> weights,
                                    std::span<const double> probs) {
    double total = 0.0, mean = 0.0, var = 0.0;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        const auto w = static_cast<double>(weights[i]);
        total += w;
        mean += w * probs[i];
        var += w * w * probs[i] * (1.0 - probs[i]);
    }
    const double threshold = total / 2.0;
    if (var <= 0.0) return mean > threshold ? 1.0 : 0.0;  // deterministic votes
    // Continuity correction: S is integer-ish on the weight lattice; use
    // half a unit, the standard correction for the unit-weight case.
    return 1.0 - prob::normal_cdf(threshold + 0.5, mean, std::sqrt(var));
}

}  // namespace

double exact_correct_probability(const DelegationOutcome& outcome,
                                 const model::CompetencyVector& p) {
    TallyScratch scratch;
    return exact_correct_probability(outcome, p, scratch);
}

void stage_tally_lane(TallyBatch& batch, const DelegationOutcome& outcome,
                      const model::CompetencyVector& p) {
    expects(batch.lanes < TallyBatch::kMaxLanes, "tally batch: no free lane");
    expects(outcome.voter_count() == p.size(), "tally: size mismatch");
    sink_profile_into(outcome, p, batch.weights[batch.lanes],
                      batch.probs[batch.lanes]);
    ++batch.lanes;
}

void tally_staged(TallyBatch& batch) {
    if (batch.lanes == 0) return;
    std::array<prob::BatchTallyLane, TallyBatch::kMaxLanes> lanes;
    for (std::size_t k = 0; k < batch.lanes; ++k) {
        lanes[k] = {batch.weights[k], batch.probs[k]};
    }
    prob::batch_weighted_majority(
        std::span<const prob::BatchTallyLane>(lanes.data(), batch.lanes),
        batch.result, batch.scratch);
}

double exact_correct_probability(const DelegationOutcome& outcome,
                                 const model::CompetencyVector& p,
                                 TallyScratch& scratch) {
    expects(outcome.voter_count() == p.size(), "tally: size mismatch");
    sink_profile_into(outcome, p, scratch.sink_weights, scratch.sink_probs);
    if (scratch.sink_weights.empty()) return 0.0;  // nobody voted
    return prob::weighted_majority_probability(scratch.sink_weights,
                                               scratch.sink_probs, scratch.dp);
}

double truncated_correct_probability(const DelegationOutcome& outcome,
                                     const model::CompetencyVector& p,
                                     double epsilon, TallyScratch& scratch) {
    expects(outcome.voter_count() == p.size(), "tally: size mismatch");
    sink_profile_into(outcome, p, scratch.sink_weights, scratch.sink_probs);
    if (scratch.sink_weights.empty()) return 0.0;  // nobody voted
    const auto tally = prob::truncated_weighted_majority(
        scratch.sink_weights, scratch.sink_probs, epsilon, scratch.dp);
    // Static-local cache: registry lookup once, relaxed atomic store per
    // tally thereafter (the replication loop calls this millions of times).
    static support::Gauge& window_gauge =
        support::MetricsRegistry::global().gauge("tally.window_width");
    window_gauge.set(static_cast<std::int64_t>(tally.max_window));
    return tally.tail;
}

double approx_correct_probability(const DelegationOutcome& outcome,
                                  const model::CompetencyVector& p) {
    TallyScratch scratch;
    return approx_correct_probability(outcome, p, scratch);
}

double approx_correct_probability(const DelegationOutcome& outcome,
                                  const model::CompetencyVector& p,
                                  TallyScratch& scratch) {
    expects(outcome.voter_count() == p.size(), "tally: size mismatch");
    sink_profile_into(outcome, p, scratch.sink_weights, scratch.sink_probs);
    if (scratch.sink_weights.empty()) return 0.0;
    // The CLT needs many sinks; with few, the exact DP is cheap anyway
    // (O(#sinks · W)) and avoids an O(1) bias (e.g. a dictator sink is a
    // single Bernoulli, not a normal).
    if (scratch.sink_weights.size() <= 64) {
        return prob::weighted_majority_probability(scratch.sink_weights,
                                                   scratch.sink_probs, scratch.dp);
    }
    return approx_majority_from_profile(scratch.sink_weights, scratch.sink_probs);
}

double conditional_vote_variance(const DelegationOutcome& outcome,
                                 const model::CompetencyVector& p) {
    expects(outcome.voter_count() == p.size(), "tally: size mismatch");
    const auto& w = outcome.weights();
    double var = 0.0;
    for (graph::Vertex s : outcome.voting_sinks()) {
        const auto weight = static_cast<double>(w[s]);
        var += weight * weight * p[s] * (1.0 - p[s]);
    }
    return var;
}

double conditional_vote_mean(const DelegationOutcome& outcome,
                             const model::CompetencyVector& p) {
    expects(outcome.voter_count() == p.size(), "tally: size mismatch");
    const auto& w = outcome.weights();
    double mean = 0.0;
    for (graph::Vertex s : outcome.voting_sinks()) {
        mean += static_cast<double>(w[s]) * p[s];
    }
    return mean;
}

namespace {

bool majority_of_votes(const std::vector<std::optional<bool>>& vote) {
    std::uint64_t correct = 0, cast = 0;
    for (std::size_t v = 0; v < vote.size(); ++v) {
        if (vote[v].has_value()) {
            ++cast;
            if (*vote[v]) ++correct;
        }
    }
    return cast > 0 && correct * 2 > cast;
}

}  // namespace

bool sample_outcome_correct(const DelegationOutcome& outcome,
                            const model::CompetencyVector& p, rng::Rng& rng) {
    expects(outcome.voter_count() == p.size(), "tally: size mismatch");
    if (outcome.functional()) {
        // Fast path: draw the sinks only and use the weighted majority.
        const auto& w = outcome.weights();
        std::uint64_t correct = 0, cast = 0;
        for (graph::Vertex s : outcome.voting_sinks()) {
            cast += w[s];
            if (rng.next_bernoulli(p[s])) correct += w[s];
        }
        return cast > 0 && correct * 2 > cast;
    }
    const auto order = outcome.as_digraph().topological_order();
    std::vector<std::optional<bool>> vote;
    realize_votes_into(outcome, p, rng, order, vote);
    return majority_of_votes(vote);
}

bool sample_outcome_correct(const DelegationOutcome& outcome,
                            const model::CompetencyVector& p, rng::Rng& rng,
                            std::span<const graph::Vertex> topo_order,
                            TallyScratch& scratch) {
    expects(outcome.voter_count() == p.size(), "tally: size mismatch");
    if (outcome.functional()) {
        return sample_outcome_correct(outcome, p, rng);  // sink fast path
    }
    realize_votes_into(outcome, p, rng, topo_order, scratch.votes);
    return majority_of_votes(scratch.votes);
}

std::uint64_t sample_correct_vote_count(const DelegationOutcome& outcome,
                                        const model::CompetencyVector& p,
                                        rng::Rng& rng) {
    expects(outcome.voter_count() == p.size(), "tally: size mismatch");
    if (outcome.functional()) {
        const auto& w = outcome.weights();
        std::uint64_t correct = 0;
        for (graph::Vertex s : outcome.voting_sinks()) {
            if (rng.next_bernoulli(p[s])) correct += w[s];
        }
        return correct;
    }
    const auto order = outcome.as_digraph().topological_order();
    std::vector<std::optional<bool>> vote;
    realize_votes_into(outcome, p, rng, order, vote);
    std::uint64_t correct = 0;
    for (const auto& v : vote) {
        if (v.has_value() && *v) ++correct;
    }
    return correct;
}

}  // namespace ld::election
