#include "ld/election/tally.hpp"

#include <cmath>
#include <optional>
#include <vector>

#include "prob/normal.hpp"
#include "prob/weighted_bernoulli_sum.hpp"
#include "support/expect.hpp"

namespace ld::election {

using delegation::DelegationOutcome;
using mech::ActionKind;
using support::expects;

namespace {

/// Collect (weight, competency) pairs of the voting sinks.
std::pair<std::vector<std::uint64_t>, std::vector<double>> sink_profile(
    const DelegationOutcome& outcome, const model::CompetencyVector& p) {
    std::vector<std::uint64_t> weights;
    std::vector<double> probs;
    const auto& w = outcome.weights();
    for (graph::Vertex s : outcome.voting_sinks()) {
        weights.push_back(w[s]);
        probs.push_back(p[s]);
    }
    return {std::move(weights), std::move(probs)};
}

/// Realize every voter's effective vote (std::nullopt = abstained).
/// Votes propagate along delegation arcs in topological order.
std::vector<std::optional<bool>> realize_votes(const DelegationOutcome& outcome,
                                               const model::CompetencyVector& p,
                                               rng::Rng& rng) {
    const std::size_t n = outcome.voter_count();
    std::vector<std::optional<bool>> vote(n);
    const auto order = outcome.as_digraph().topological_order();
    // Process targets before sources: reverse topological order.
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
        const graph::Vertex v = *it;
        const mech::Action& a = outcome.action(v);
        switch (a.kind) {
            case ActionKind::Abstain:
                vote[v] = std::nullopt;
                break;
            case ActionKind::Vote:
                vote[v] = rng.next_bernoulli(p[v]);
                break;
            case ActionKind::Delegate: {
                // Weighted majority over the delegates' realized votes
                // (§6's locally defined weight function; uniform when the
                // action carries no weights).
                double correct = 0.0, cast = 0.0;
                for (std::size_t i = 0; i < a.targets.size(); ++i) {
                    const graph::Vertex t = a.targets[i];
                    if (t == v) continue;  // self-delegation = voting
                    if (!vote[t].has_value()) continue;  // abstained delegate
                    const double w =
                        a.target_weights.empty() ? 1.0 : a.target_weights[i];
                    cast += w;
                    if (*vote[t]) correct += w;
                }
                if (cast == 0.0) {
                    // Self-delegation, or every delegate abstained: fall
                    // back to the voter's own competency draw.
                    vote[v] = rng.next_bernoulli(p[v]);
                } else if (correct * 2.0 == cast) {
                    // Weighted tie: break with the voter's own draw.
                    vote[v] = rng.next_bernoulli(p[v]);
                } else {
                    vote[v] = correct * 2.0 > cast;
                }
                break;
            }
        }
    }
    return vote;
}

}  // namespace

double exact_correct_probability(const DelegationOutcome& outcome,
                                 const model::CompetencyVector& p) {
    expects(outcome.voter_count() == p.size(), "tally: size mismatch");
    auto [weights, probs] = sink_profile(outcome, p);
    if (weights.empty()) return 0.0;  // nobody voted — cannot decide correctly
    prob::WeightedBernoulliSum dist(weights, probs);
    return dist.majority_probability();
}

double approx_correct_probability(const DelegationOutcome& outcome,
                                  const model::CompetencyVector& p) {
    expects(outcome.voter_count() == p.size(), "tally: size mismatch");
    auto [weights, probs] = sink_profile(outcome, p);
    if (weights.empty()) return 0.0;
    // The CLT needs many sinks; with few, the exact DP is cheap anyway
    // (O(#sinks · W)) and avoids an O(1) bias (e.g. a dictator sink is a
    // single Bernoulli, not a normal).
    if (weights.size() <= 64) {
        prob::WeightedBernoulliSum dist(weights, probs);
        return dist.majority_probability();
    }
    double total = 0.0, mean = 0.0, var = 0.0;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        const auto w = static_cast<double>(weights[i]);
        total += w;
        mean += w * probs[i];
        var += w * w * probs[i] * (1.0 - probs[i]);
    }
    const double threshold = total / 2.0;
    if (var <= 0.0) return mean > threshold ? 1.0 : 0.0;  // deterministic votes
    // Continuity correction: S is integer-ish on the weight lattice; use
    // half a unit, the standard correction for the unit-weight case.
    return 1.0 - prob::normal_cdf(threshold + 0.5, mean, std::sqrt(var));
}

double conditional_vote_variance(const DelegationOutcome& outcome,
                                 const model::CompetencyVector& p) {
    expects(outcome.voter_count() == p.size(), "tally: size mismatch");
    const auto& w = outcome.weights();
    double var = 0.0;
    for (graph::Vertex s : outcome.voting_sinks()) {
        const auto weight = static_cast<double>(w[s]);
        var += weight * weight * p[s] * (1.0 - p[s]);
    }
    return var;
}

double conditional_vote_mean(const DelegationOutcome& outcome,
                             const model::CompetencyVector& p) {
    expects(outcome.voter_count() == p.size(), "tally: size mismatch");
    const auto& w = outcome.weights();
    double mean = 0.0;
    for (graph::Vertex s : outcome.voting_sinks()) {
        mean += static_cast<double>(w[s]) * p[s];
    }
    return mean;
}

bool sample_outcome_correct(const DelegationOutcome& outcome,
                            const model::CompetencyVector& p, rng::Rng& rng) {
    expects(outcome.voter_count() == p.size(), "tally: size mismatch");
    if (outcome.functional()) {
        // Fast path: draw the sinks only and use the weighted majority.
        const auto& w = outcome.weights();
        std::uint64_t correct = 0, cast = 0;
        for (graph::Vertex s : outcome.voting_sinks()) {
            cast += w[s];
            if (rng.next_bernoulli(p[s])) correct += w[s];
        }
        return cast > 0 && correct * 2 > cast;
    }
    const auto vote = realize_votes(outcome, p, rng);
    std::uint64_t correct = 0, cast = 0;
    for (std::size_t v = 0; v < vote.size(); ++v) {
        if (vote[v].has_value()) {
            ++cast;
            if (*vote[v]) ++correct;
        }
    }
    return cast > 0 && correct * 2 > cast;
}

std::uint64_t sample_correct_vote_count(const DelegationOutcome& outcome,
                                        const model::CompetencyVector& p,
                                        rng::Rng& rng) {
    expects(outcome.voter_count() == p.size(), "tally: size mismatch");
    if (outcome.functional()) {
        const auto& w = outcome.weights();
        std::uint64_t correct = 0;
        for (graph::Vertex s : outcome.voting_sinks()) {
            if (rng.next_bernoulli(p[s])) correct += w[s];
        }
        return correct;
    }
    const auto vote = realize_votes(outcome, p, rng);
    std::uint64_t correct = 0;
    for (const auto& v : vote) {
        if (v.has_value() && *v) ++correct;
    }
    return correct;
}

}  // namespace ld::election
