// Tallying a realized delegation graph (paper §2.2 "Probability of Correct
// Decision"): sinks vote independently with their competencies, the
// decision is the weighted majority, ties lose (strict majority required).
//
// Two routes are provided:
//  * exact  — the correct-decision probability conditioned on the realized
//             delegation graph, via the weighted Poisson-binomial DP
//             (removes one layer of Monte-Carlo noise);
//  * sample — draw one realization of all votes; also the only route for
//             the §6 multi-delegation extension, where a voter's effective
//             vote is the majority of its delegates' realized votes.

#pragma once

#include <array>
#include <optional>
#include <span>
#include <vector>

#include "ld/delegation/delegation_graph.hpp"
#include "ld/model/competency.hpp"
#include "prob/batch_tally.hpp"
#include "prob/convolve.hpp"
#include "rng/rng.hpp"

namespace ld::election {

/// Reusable buffers for the inner tally — the sink profile, the
/// weighted-Bernoulli DP table, and the vote-propagation state of the
/// multi-delegation sampler.  One per replication worker; reused across
/// replications (and across cells when owned by a ReplicationWorkspace).
struct TallyScratch {
    std::vector<std::uint64_t> sink_weights;
    std::vector<double> sink_probs;
    prob::ConvolveScratch dp;
    std::vector<std::optional<bool>> votes;
};

/// Staging area for batched exact tallies: up to kMaxLanes realized
/// sink profiles, copied out of the (per-replication reused) outcome so
/// all lanes coexist, plus the lockstep DP scratch.  One per replication
/// worker, owned by its ReplicationWorkspace.
struct TallyBatch {
    static constexpr std::size_t kMaxLanes = prob::kBatchTallyLanes;
    std::array<std::vector<std::uint64_t>, kMaxLanes> weights;
    std::array<std::vector<double>, kMaxLanes> probs;
    std::array<double, kMaxLanes> result{};  ///< filled by tally_staged
    prob::BatchTallyScratch scratch;
    std::size_t lanes = 0;  ///< staged lane count

    void clear() noexcept { lanes = 0; }
};

/// Copy the realized outcome's sink profile into the next free lane of
/// `batch`.  Requires a functional outcome and batch.lanes < kMaxLanes.
void stage_tally_lane(TallyBatch& batch,
                      const delegation::DelegationOutcome& outcome,
                      const model::CompetencyVector& p);

/// Tally every staged lane in SoA lockstep (prob::batch_weighted_majority)
/// and write `batch.result[k]` for k < batch.lanes, in staging order.
/// Each result is bit-identical to `exact_correct_probability` on the
/// outcome that was staged into lane k — on every kernel tier and for
/// every batch size.
void tally_staged(TallyBatch& batch);

/// Exact P[weighted majority correct | realized delegation graph].
/// Requires a functional outcome.  If no votes are cast at all (everyone
/// abstained), the decision cannot be correct and the result is 0.
double exact_correct_probability(const delegation::DelegationOutcome& outcome,
                                 const model::CompetencyVector& p);

/// Zero-allocation variant: same result, buffers drawn from `scratch`.
double exact_correct_probability(const delegation::DelegationOutcome& outcome,
                                 const model::CompetencyVector& p,
                                 TallyScratch& scratch);

/// ε-truncated variant of `exact_correct_probability`: the windowed DP of
/// `prob::truncated_weighted_majority`, whose result is within a
/// *certified* ε/2 of the exact tally.  Cost drops from O(#sinks·W) to
/// ~O(#sinks·σ_W) because the live window hugs the threshold.  Records
/// the peak window width in the `tally.window_width` gauge.  ε = 0 keeps
/// the windowed fast path with zero error.
double truncated_correct_probability(const delegation::DelegationOutcome& outcome,
                                     const model::CompetencyVector& p,
                                     double epsilon, TallyScratch& scratch);

/// Normal approximation of `exact_correct_probability`: P[S > W/2] for
/// S ~ N(Σ w_i p_i, Σ w_i² p_i(1−p_i)) with continuity correction.
/// Justified by the paper's Lemma 4 (CLT for the vote sum); error is
/// O(1/√#sinks) (Berry–Esseen), so use it when the exact O(#sinks·W) DP is
/// too expensive (W beyond ~10⁴).  Degenerate cases (no votes cast, zero
/// variance) are handled exactly.
double approx_correct_probability(const delegation::DelegationOutcome& outcome,
                                  const model::CompetencyVector& p);

/// Zero-allocation variant of `approx_correct_probability`.
double approx_correct_probability(const delegation::DelegationOutcome& outcome,
                                  const model::CompetencyVector& p,
                                  TallyScratch& scratch);

/// Conditional variance of the correct-vote count S = Σ w_i x_i given the
/// realized delegation graph: Σ w_i² p_i (1 − p_i).  Requires functional.
double conditional_vote_variance(const delegation::DelegationOutcome& outcome,
                                 const model::CompetencyVector& p);

/// Conditional mean of the correct-vote count: Σ w_i p_i.  Requires
/// functional.
double conditional_vote_mean(const delegation::DelegationOutcome& outcome,
                             const model::CompetencyVector& p);

/// Sample one full vote realization and return whether the weighted
/// majority is correct.  Works for functional *and* multi-delegation
/// outcomes: delegated votes propagate in topological order, a
/// multi-delegator's effective vote is the majority over its targets'
/// effective votes (targets that abstained are skipped; if every target
/// abstained the voter falls back to their own competency draw).
bool sample_outcome_correct(const delegation::DelegationOutcome& outcome,
                            const model::CompetencyVector& p, rng::Rng& rng);

/// Workspace variant for the multi-delegation inner loop: the caller
/// precomputes `topo_order = outcome.as_digraph().topological_order()`
/// *once per realization* and reuses it (plus `scratch.votes`) across the
/// inner samples, instead of rebuilding the digraph per sample.  Draws the
/// same RNG stream as the plain overload.
bool sample_outcome_correct(const delegation::DelegationOutcome& outcome,
                            const model::CompetencyVector& p, rng::Rng& rng,
                            std::span<const graph::Vertex> topo_order,
                            TallyScratch& scratch);

/// Sample one realization and return the number of correct votes cast
/// (each non-abstaining voter contributes one vote — for functional
/// outcomes this equals the weighted sink sum).
std::uint64_t sample_correct_vote_count(const delegation::DelegationOutcome& outcome,
                                        const model::CompetencyVector& p, rng::Rng& rng);

}  // namespace ld::election
