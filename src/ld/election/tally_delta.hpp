// Live tally over a DynamicResolution — the TallyDelta path of the
// incremental churn engine (docs/CHURN.md).
//
// Instead of rebuilding the weighted-Poisson-binomial DP after every
// delegation patch (O(#sinks · W)), LiveTally keeps two segmented product
// trees of sink factors (prob::FactorTree):
//
//  * the *mechanism* tree — one factor {0 ↦ 1−p_s, w_s ↦ p_s} per voting
//    sink of the current delegation state, giving P^M of the live state;
//  * the *direct* tree — one factor per voter at their initial weight,
//    giving the exact P^D baseline (which competency patches also move).
//
// A delegation patch changes the pooled weight of at most two sinks
// (DynamicResolution::PatchResult::changes), so re-tallying is two leaf
// updates — O(log n) node recomputes — instead of a full rebuild.  A
// competency patch updates one leaf in each tree.  Both probabilities are
// certified: |reported − exact| <= the tree's error_bound() (<= the ε the
// trees were reset with).

#pragma once

#include <span>

#include "graph/graph.hpp"
#include "ld/delegation/incremental.hpp"
#include "prob/factor_tree.hpp"

namespace ld::election {

class LiveTally {
public:
    LiveTally() = default;

    /// Rebuild both trees for the resolution's current state.
    /// `competencies` is copied (patches mutate it); `epsilon` is the
    /// certified clip budget applied to each tree independently.
    void reset(std::span<const double> competencies,
               const delegation::DynamicResolution& resolution, double epsilon);

    /// Sync the mechanism tree with one patch's pooled-weight changes.
    void apply_sink_changes(
        std::span<const delegation::DynamicResolution::SinkChange> changes);

    /// Patch voter `v`'s competency (clamped to [0, 1]); updates the
    /// direct tree and, when `v` is currently a voting sink, the
    /// mechanism tree.
    void set_competency(const delegation::DynamicResolution& resolution,
                        graph::Vertex v, double p);

    double competency(graph::Vertex v) const { return p_[v]; }
    std::span<const double> competencies() const noexcept { return p_; }

    /// P[the live delegation state decides correctly] (strict weighted
    /// majority over the current sinks).
    double correct_probability() const { return mech_tree_.majority_probability(); }

    /// Exact-within-ε P^D under the current competencies.
    double direct_probability() const { return direct_tree_.majority_probability(); }

    double gain() const { return correct_probability() - direct_probability(); }

    /// Certified numerical bound on |reported − exact| for the mechanism
    /// (resp. direct) probability.
    double error_bound() const { return mech_tree_.error_bound(); }
    double direct_error_bound() const { return direct_tree_.error_bound(); }

    const prob::FactorTree& mechanism_tree() const noexcept { return mech_tree_; }
    const prob::FactorTree& direct_tree() const noexcept { return direct_tree_; }

private:
    std::vector<double> p_;
    prob::FactorTree mech_tree_;
    prob::FactorTree direct_tree_;
};

}  // namespace ld::election
