#include "ld/election/engine.hpp"

namespace ld::election {

ReplicationWorkspace& ReplicationEngine::local_workspace() {
    const auto id = std::this_thread::get_id();
    const std::lock_guard<std::mutex> lock(mutex_);
    auto& slot = workspaces_[id];
    if (!slot) slot = std::make_unique<ReplicationWorkspace>();
    return *slot;
}

ReplicationEngine& ReplicationEngine::shared() {
    static ReplicationEngine engine;
    return engine;
}

}  // namespace ld::election
