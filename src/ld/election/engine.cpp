#include "ld/election/engine.hpp"

#include "support/metrics.hpp"

namespace ld::election {

ReplicationWorkspace& ReplicationEngine::local_workspace() {
    // Cold-start vs warm-hit accounting: "created" means this thread had
    // to build fresh buffers, "reused" means a later chunk found them warm
    // — the reuse rate is the engine's whole point, so it is reported.
    static support::Counter& created =
        support::MetricsRegistry::global().counter("engine.workspace_created");
    static support::Counter& reused =
        support::MetricsRegistry::global().counter("engine.workspace_reused");
    const auto id = std::this_thread::get_id();
    const std::lock_guard<std::mutex> lock(mutex_);
    auto& slot = workspaces_[id];
    if (!slot) {
        slot = std::make_unique<ReplicationWorkspace>();
        created.add(1);
    } else {
        reused.add(1);
    }
    return *slot;
}

ReplicationEngine& ReplicationEngine::shared() {
    static ReplicationEngine engine;
    return engine;
}

}  // namespace ld::election
