// Exact (enumerative) evaluation of P^M(G) for small instances.
//
// A mechanism's randomness has finite support per voter: each voter either
// votes directly or delegates to one of at most `deg` targets.  For small
// instances we enumerate every delegation profile in the product support,
// weight it by its probability, and tally each outcome exactly — giving
// P^M(G) with no Monte-Carlo error.  This is the ground truth the
// estimator tests (and any future mechanism) are validated against.
//
// Complexity: Π_v (1 + |support_v|); practical for ~10–15 voters.

#pragma once

#include <cstddef>
#include <vector>

#include "ld/mech/mechanism.hpp"
#include "ld/model/instance.hpp"
#include "rng/rng.hpp"

namespace ld::election {

/// The exact per-voter delegation law of a mechanism on an instance:
/// `vote_probability` plus (target, probability) pairs.  Distributions are
/// recovered either from the mechanism's closed form + uniform-approved
/// convention, or empirically (see `estimate_support`).
struct VoterLaw {
    double vote_probability = 1.0;
    std::vector<std::pair<graph::Vertex, double>> delegate_probabilities;
};

/// Recover the exact law of a *uniform-approved threshold style* mechanism:
/// requires `vote_directly_probability()` to be available; the remaining
/// mass is spread uniformly over the approved neighbours.  Throws if the
/// mechanism has no closed form.
std::vector<VoterLaw> uniform_approved_laws(const mech::Mechanism& mechanism,
                                            const model::Instance& instance);

/// Estimate each voter's law empirically with `samples` draws per voter —
/// usable for any single-delegate mechanism; exact in the limit.
std::vector<VoterLaw> estimate_laws(const mech::Mechanism& mechanism,
                                    const model::Instance& instance, rng::Rng& rng,
                                    std::size_t samples);

/// Exact P^M(G) by full enumeration of the delegation-profile product law.
/// `laws` must have one entry per voter.  Throws `ContractViolation` if the
/// enumeration would exceed `max_profiles` (default 2^22).
double exact_mechanism_probability(const model::Instance& instance,
                                   const std::vector<VoterLaw>& laws,
                                   std::size_t max_profiles = (1u << 22));

}  // namespace ld::election
