#include "ld/election/tally_delta.hpp"

#include <algorithm>

#include "support/expect.hpp"

namespace ld::election {

using support::expects;

void LiveTally::reset(std::span<const double> competencies,
                      const delegation::DynamicResolution& resolution,
                      double epsilon) {
    const std::size_t n = resolution.voter_count();
    expects(competencies.size() == n,
            "LiveTally: one competency per voter required");
    p_.assign(competencies.begin(), competencies.end());
    mech_tree_.reset(n, epsilon);
    direct_tree_.reset(n, epsilon);
    mech_tree_.begin_bulk();
    direct_tree_.begin_bulk();
    for (graph::Vertex v = 0; v < n; ++v) {
        const std::uint64_t pooled = resolution.pooled_weight(v);
        if (pooled > 0) mech_tree_.set_factor(v, pooled, p_[v]);
        direct_tree_.set_factor(v, resolution.initial_weight(v), p_[v]);
    }
    mech_tree_.end_bulk();
    direct_tree_.end_bulk();
}

void LiveTally::apply_sink_changes(
    std::span<const delegation::DynamicResolution::SinkChange> changes) {
    for (const auto& change : changes) {
        if (change.weight > 0) {
            mech_tree_.set_factor(change.sink, change.weight, p_[change.sink]);
        } else {
            mech_tree_.clear_factor(change.sink);
        }
    }
}

void LiveTally::set_competency(const delegation::DynamicResolution& resolution,
                               graph::Vertex v, double p) {
    expects(v < p_.size(), "LiveTally: voter out of range");
    p_[v] = std::clamp(p, 0.0, 1.0);
    direct_tree_.set_factor(v, resolution.initial_weight(v), p_[v]);
    const std::uint64_t pooled = resolution.pooled_weight(v);
    if (pooled > 0) mech_tree_.set_factor(v, pooled, p_[v]);
}

}  // namespace ld::election
