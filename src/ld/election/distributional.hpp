// Probabilistic competencies (§6 "Practical Considerations"): the paper
// notes that in practice the competency vector is not fixed but drawn from
// a distribution, as in Halpern et al.'s model, and asks for the two
// analyses to be unified.  This evaluator does the empirical half: the
// gain of a mechanism over a *distribution* of instances sharing one graph
// — E_p[gain(M, (V, E, p))] — with per-draw exact baselines.

#pragma once

#include <functional>

#include "graph/graph.hpp"
#include "ld/election/evaluator.hpp"
#include "ld/mech/mechanism.hpp"
#include "ld/model/competency.hpp"
#include "rng/rng.hpp"

namespace ld::election {

/// Draws a fresh competency vector for `n` voters.
using CompetencySampler =
    std::function<model::CompetencyVector(std::size_t n, rng::Rng& rng)>;

/// Gain statistics over competency draws.
struct DistributionalGainReport {
    Estimate gain;            ///< E_p[P^M − P^D] with CI over draws
    Estimate pd;              ///< E_p[P^D]
    Estimate pm;              ///< E_p[P^M]
    double worst_gain = 0.0;  ///< min over draws (probabilistic DNH witness)
    double best_gain = 0.0;   ///< max over draws
    std::size_t draws = 0;
};

/// Estimate the expected gain over `draws` competency vectors sampled from
/// `sampler`, on a fixed graph and α.  Inner evaluation uses
/// `options.replications` delegation realizations per draw (exact P^D per
/// draw).
DistributionalGainReport estimate_gain_over_distribution(
    const mech::Mechanism& mechanism, const graph::Graph& graph, double alpha,
    const CompetencySampler& sampler, rng::Rng& rng, std::size_t draws,
    const EvalOptions& options = {});

}  // namespace ld::election
