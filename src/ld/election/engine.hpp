// The replication execution engine: a persistent thread pool plus one
// ReplicationWorkspace per worker thread.  Every estimate_* call runs its
// replication loop through an engine, so workers and their workspaces are
// shared across experiment cells instead of being recreated per call.
//
// Determinism contract (unchanged from the inline-spawn implementation):
// for a fixed (seed, threads) pair the parent RNG is split into `threads`
// jumped streams up front, stream t runs the t-th replication chunk, and
// partial statistics are merged in stream order — so results are
// bit-identical no matter which OS thread executes which chunk, whether
// the pool or the legacy spawn path runs it, and how cells are scheduled.

#pragma once

#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "ld/election/workspace.hpp"
#include "support/thread_pool.hpp"

namespace ld::election {

/// Pool + per-thread workspaces.  Thread-safe; one engine can serve many
/// concurrent estimate calls.
class ReplicationEngine {
public:
    /// Engine over `pool` (defaults to the process-wide shared pool).
    /// The pool must outlive the engine.
    explicit ReplicationEngine(support::ThreadPool& pool = support::ThreadPool::global())
        : pool_(&pool) {}

    support::ThreadPool& pool() const noexcept { return *pool_; }

    /// The calling thread's workspace, created on first use and reused for
    /// every subsequent replication chunk this thread runs through this
    /// engine — including chunks of later estimate calls on different
    /// instances (buffers are re-sized per replication, so no state leaks
    /// across cells).
    ReplicationWorkspace& local_workspace();

    /// Process-wide engine used when EvalOptions names no engine.
    static ReplicationEngine& shared();

private:
    support::ThreadPool* pool_;
    std::mutex mutex_;
    std::unordered_map<std::thread::id, std::unique_ptr<ReplicationWorkspace>> workspaces_;
};

}  // namespace ld::election
