// Per-worker scratch for the Monte-Carlo replication loop.  One workspace
// per worker thread; every replication rebuilds the delegation outcome and
// tallies it *in place*, so the steady state of the loop performs no heap
// allocation: the actions vector (including each voter's `targets`
// buffer), the sink-resolution scratch, the sink profile, the
// weighted-Bernoulli DP table, and the multi-delegation vote buffers are
// all recycled across replications — and across experiment cells when the
// workspace is owned by a ReplicationEngine.

#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "ld/delegation/delegation_graph.hpp"
#include "ld/election/tally.hpp"

namespace ld::election {

/// Everything one replication worker reuses between replications.
struct ReplicationWorkspace {
    /// The realized delegation graph, rebuilt in place each replication.
    delegation::DelegationOutcome outcome;
    /// Sink-resolution scratch (chain walk, depths, cycle marks).
    delegation::DelegationOutcome::ResolveScratch resolve;
    /// Inner-tally buffers (sink profile, DP table, sampled votes).
    TallyScratch tally;
    /// Staged sink profiles + lockstep DP for the batched exact route
    /// (K replications advanced per instruction stream).
    TallyBatch tally_batch;
    /// Reverse-topological order of the current realization — computed
    /// once per replication for multi-delegation outcomes and shared by
    /// all inner samples.
    std::vector<graph::Vertex> topo_order;
};

}  // namespace ld::election
