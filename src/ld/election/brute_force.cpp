#include "ld/election/brute_force.hpp"

#include <map>

#include "ld/delegation/delegation_graph.hpp"
#include "ld/election/tally.hpp"
#include "support/expect.hpp"

namespace ld::election {

using support::expects;

std::vector<VoterLaw> uniform_approved_laws(const mech::Mechanism& mechanism,
                                            const model::Instance& instance) {
    std::vector<VoterLaw> laws;
    laws.reserve(instance.voter_count());
    for (graph::Vertex v = 0; v < instance.voter_count(); ++v) {
        const auto z = mechanism.vote_directly_probability(instance, v);
        expects(z.has_value(),
                "uniform_approved_laws: mechanism has no closed-form law");
        VoterLaw law;
        law.vote_probability = *z;
        const double delegate_mass = 1.0 - *z;
        if (delegate_mass > 0.0) {
            const auto approved = instance.approved_neighbours(v);
            expects(!approved.empty(),
                    "uniform_approved_laws: delegating voter with empty approval set");
            for (graph::Vertex t : approved) {
                law.delegate_probabilities.emplace_back(
                    t, delegate_mass / static_cast<double>(approved.size()));
            }
        }
        laws.push_back(std::move(law));
    }
    return laws;
}

std::vector<VoterLaw> estimate_laws(const mech::Mechanism& mechanism,
                                    const model::Instance& instance, rng::Rng& rng,
                                    std::size_t samples) {
    expects(samples > 0, "estimate_laws: need at least one sample");
    expects(!mechanism.multi_delegation(),
            "estimate_laws: multi-delegation laws are not per-target categorical");
    std::vector<VoterLaw> laws(instance.voter_count());
    for (graph::Vertex v = 0; v < instance.voter_count(); ++v) {
        std::size_t votes = 0;
        std::map<graph::Vertex, std::size_t> targets;
        for (std::size_t s = 0; s < samples; ++s) {
            const auto action = mechanism.act(instance, v, rng);
            if (action.kind == mech::ActionKind::Delegate) {
                ++targets[action.targets.front()];
            } else {
                ++votes;  // Vote or Abstain both leave no delegation arc
            }
        }
        VoterLaw& law = laws[v];
        law.vote_probability = static_cast<double>(votes) / static_cast<double>(samples);
        for (const auto& [t, count] : targets) {
            law.delegate_probabilities.emplace_back(
                t, static_cast<double>(count) / static_cast<double>(samples));
        }
    }
    return laws;
}

namespace {

/// Depth-first enumeration over the product law: at voter v, branch over
/// "vote" and each delegation target, carrying the profile probability.
class Enumerator {
public:
    Enumerator(const model::Instance& instance, const std::vector<VoterLaw>& laws)
        : instance_(instance), laws_(laws),
          actions_(instance.voter_count(), mech::Action::vote()) {}

    double run() {
        recurse(0, 1.0);
        return total_;
    }

private:
    void recurse(graph::Vertex v, double profile_probability) {
        if (profile_probability == 0.0) return;
        if (v == instance_.voter_count()) {
            delegation::DelegationOutcome outcome(actions_);
            total_ += profile_probability *
                      exact_correct_probability(outcome, instance_.competencies());
            return;
        }
        const VoterLaw& law = laws_[v];
        if (law.vote_probability > 0.0) {
            actions_[v] = mech::Action::vote();
            recurse(v + 1, profile_probability * law.vote_probability);
        }
        for (const auto& [target, probability] : law.delegate_probabilities) {
            actions_[v] = mech::Action::delegate_to(target);
            recurse(v + 1, profile_probability * probability);
        }
        actions_[v] = mech::Action::vote();
    }

    const model::Instance& instance_;
    const std::vector<VoterLaw>& laws_;
    std::vector<mech::Action> actions_;
    double total_ = 0.0;
};

}  // namespace

double exact_mechanism_probability(const model::Instance& instance,
                                   const std::vector<VoterLaw>& laws,
                                   std::size_t max_profiles) {
    expects(laws.size() == instance.voter_count(),
            "exact_mechanism_probability: one law per voter required");
    double profiles = 1.0;
    for (const VoterLaw& law : laws) {
        const double branches =
            (law.vote_probability > 0.0 ? 1.0 : 0.0) +
            static_cast<double>(law.delegate_probabilities.size());
        profiles *= std::max(branches, 1.0);
        expects(profiles <= static_cast<double>(max_profiles),
                "exact_mechanism_probability: enumeration too large");
    }
    Enumerator e(instance, laws);
    return e.run();
}

}  // namespace ld::election
