// The evaluator computes the paper's headline quantities:
//
//   P^M(G)        — probability mechanism M decides correctly on G,
//   P^D(G)        — the direct-voting baseline (computed *exactly* via the
//                   Poisson-binomial distribution),
//   gain(M, G)    — P^M − P^D, with confidence intervals,
//   variance diagnostics — the law-of-total-variance decomposition of the
//                   correct-vote count under delegation, the quantity the
//                   paper's DNH conditions "manipulate".
//
// Monte-Carlo design: delegation graphs are random, so we sample R
// realizations; *conditioned on a realization* the correct-decision
// probability has a closed form (weighted Poisson-binomial), which we use
// instead of sampling votes.  This is the exact-inner-step estimator
// ablated in bench_perf_micro; it is unbiased for P^M with strictly smaller
// variance than vote-sampling (Rao–Blackwell).

#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include <optional>

#include "ld/delegation/delegation_graph.hpp"
#include "ld/mech/mechanism.hpp"
#include "ld/model/instance.hpp"
#include "rng/rng.hpp"
#include "stats/confidence.hpp"
#include "stats/confidence_sequence.hpp"
#include "stats/running_stats.hpp"

namespace ld::election {

class ReplicationEngine;

/// Certification spec for `--certify γ δ`: run replications until an
/// anytime-valid confidence sequence on the estimated mean decides the
/// claim "gain ≥ γ" (for estimate_gain; "P^M ≥ γ" for
/// estimate_correct_probability) with statistical error ≤ δ, or the
/// replication cap is exhausted.  The certified interval folds in the
/// ε/2 truncated-tally numerical bound, so the reported [lo, hi] covers
/// both error sources (docs/STATISTICS.md).
///
/// Determinism is *stronger* than the adaptive-SE path: the certified
/// loop derives one SplitMix64 seed per replication index and folds
/// samples in index order, so the stop point and interval are
/// bit-identical across thread counts, not just for fixed
/// (seed, threads).
struct CertifySpec {
    /// Gain (resp. P^M) threshold the certificate decides against.
    double gamma = 0.0;
    /// Total statistical error budget in (0, 1); 0 disables certification.
    double delta = 0.0;
    /// Anytime-valid half-width formula (docs/STATISTICS.md §3).
    stats::CsBoundary boundary = stats::CsBoundary::EmpiricalBernstein;

    bool enabled() const noexcept { return delta > 0.0; }
};

/// Knobs for Monte-Carlo evaluation.
struct EvalOptions {
    /// Number of delegation-graph realizations (fixed mode; ignored when
    /// `target_std_error` enables adaptive stopping).
    std::size_t replications = 200;
    /// Adaptive stopping: when > 0, replications run in rounds of
    /// `adaptive_batch` until the P^M standard error falls to this
    /// target or `max_replications` is reached, whichever comes first.
    /// The stopping rule is evaluated only at batch boundaries and the
    /// per-round work split across workers mirrors the fixed path, so a
    /// fixed (seed, threads) pair is bit-reproducible — the sequence of
    /// batch sizes never depends on thread scheduling.
    double target_std_error = 0.0;
    /// Replications per adaptive round (the granularity of the stopping
    /// check; also the unit the `eval.adaptive_batches` counter counts).
    std::size_t adaptive_batch = 64;
    /// Hard ceiling on adaptive replications (the target may be
    /// unreachable, e.g. a zero-variance mechanism needs 2 but a noisy
    /// one may never hit 1e-6).
    std::size_t max_replications = 100'000;
    /// ε for the certified truncated inner tally
    /// (`truncated_correct_probability`): each per-realization P^M term
    /// is within ε/2 of the exact DP, at ~O(#sinks·σ_W) instead of
    /// O(#sinks·W) cost.  0 = exact DP.  Ignored when
    /// `approximate_tally` is set (the normal route is cheaper still).
    double tally_epsilon = 0.0;
    /// Vote-propagation samples per realization for multi-delegation
    /// outcomes (functional outcomes use the exact inner step instead).
    std::size_t inner_samples = 8;
    /// Confidence level for reported intervals.
    double confidence = 0.95;
    /// Per-voter initial vote weights (e.g. DAO token balances); empty
    /// means the model's one-voter-one-vote.  Applies to both P^M and the
    /// exact P^D baseline.
    std::vector<std::uint64_t> initial_weights{};
    /// Cycle handling for realized delegation graphs.  Use Discard for
    /// mechanisms that are not approval-respecting (e.g. NoisyThreshold).
    delegation::CyclePolicy cycle_policy = delegation::CyclePolicy::Throw;
    /// Worker threads for the replication loop (1 = sequential).  Each
    /// worker draws from an independent jumped RNG stream; results are
    /// deterministic for a fixed (seed, threads) pair.
    std::size_t threads = 1;
    /// Use the Lemma-4 normal approximation for the inner tally instead of
    /// the exact weighted Poisson-binomial DP — O(#sinks) instead of
    /// O(#sinks·n) per realization; Berry–Esseen-size bias.  Intended for
    /// very large instances.
    bool approximate_tally = false;
    /// Execution engine (persistent thread pool + per-worker replication
    /// workspaces).  Null means the process-wide shared engine; pass a
    /// dedicated engine to isolate workspaces (e.g. in tests).
    ReplicationEngine* engine = nullptr;
    /// When false, fan out with per-call std::thread spawn/join instead of
    /// the engine's pool — the legacy execution path, kept as a
    /// determinism reference (results are bit-identical either way).
    bool use_thread_pool = true;
    /// Certified anytime-valid stopping (`--certify γ δ`).  When enabled,
    /// overrides both fixed `replications` and `target_std_error`:
    /// replications run in rounds of `adaptive_batch` up to
    /// `max_replications`, and stopping is decided by the confidence
    /// sequence.  Incompatible with `approximate_tally` (its bias has no
    /// certified bound).
    CertifySpec certify{};
};

/// A Monte-Carlo estimate with its uncertainty.
struct Estimate {
    double value = 0.0;
    double std_error = 0.0;
    stats::Interval ci{};
    std::size_t replications = 0;
    /// Present when the run was certified (`CertifySpec::enabled()`): the
    /// anytime-valid interval on the estimated mean with the numerical
    /// tally error folded in, plus stop metadata.
    std::optional<stats::CertifiedEstimate> certified{};
};

/// gain(M, G) = P^M − P^D with Monte-Carlo uncertainty (the P^D term is
/// exact, so the interval is inherited from the P^M estimate), plus
/// delegation-shape diagnostics averaged over realizations.
struct GainReport {
    Estimate pm;                    ///< estimated P^M(G)
    double pd = 0.0;                ///< exact P^D(G)
    double gain = 0.0;              ///< pm.value − pd
    stats::Interval gain_ci{};      ///< CI on the gain
    double mean_delegators = 0.0;   ///< E[#delegators]
    double mean_max_weight = 0.0;   ///< E[max sink weight]
    double mean_sinks = 0.0;        ///< E[#voting sinks]
    double mean_longest_path = 0.0; ///< E[longest delegation path]
    /// Certified gain interval (pm.certified shifted by the exact P^D):
    /// present iff `pm.certified` is.  `pm.certified->stop` says whether
    /// the claim "gain ≥ γ" was decided.
    std::optional<stats::Interval> certified_gain{};
};

/// Law-of-total-variance decomposition of the correct-vote count S under a
/// mechanism: Var[S] = E[Var[S | graph]] + Var[E[S | graph]].
struct VarianceReport {
    double direct_variance = 0.0;        ///< Var[S] under direct voting (exact)
    double mean_conditional_variance = 0.0;  ///< E[Var[S | delegation graph]]
    double variance_of_conditional_mean = 0.0;  ///< Var[E[S | delegation graph]]
    double total_variance = 0.0;         ///< their sum
    double mean_conditional_mean = 0.0;  ///< E[S] under the mechanism
};

/// Exact P^D(G) — Poisson-binomial strict-majority probability.
double exact_direct_probability(const model::Instance& instance);

/// Exact P^D(G) under per-voter initial weights (weighted Poisson-binomial
/// strict majority); `initial_weights` empty falls back to the unweighted
/// case.
double exact_direct_probability_weighted(
    const model::Instance& instance, std::span<const std::uint64_t> initial_weights);

/// Lemma-4 normal approximation of P^D(G) (O(n) instead of the exact
/// O(n²) DP); used by the evaluator when `approximate_tally` is set.
double approx_direct_probability(const model::Instance& instance,
                                 std::span<const std::uint64_t> initial_weights = {});

/// Exact expected number of correct votes under direct voting (= Σ p_i).
double exact_direct_mean_votes(const model::Instance& instance);

/// Estimate P^M(G) by sampling delegation graphs.
Estimate estimate_correct_probability(const mech::Mechanism& mechanism,
                                      const model::Instance& instance, rng::Rng& rng,
                                      const EvalOptions& options = {});

/// Full gain report (P^M estimate, exact P^D, diagnostics).
GainReport estimate_gain(const mech::Mechanism& mechanism,
                         const model::Instance& instance, rng::Rng& rng,
                         const EvalOptions& options = {});

/// Variance decomposition of the correct-vote count under the mechanism.
/// Requires a mechanism producing functional outcomes.
VarianceReport estimate_variance(const mech::Mechanism& mechanism,
                                 const model::Instance& instance, rng::Rng& rng,
                                 const EvalOptions& options = {});

/// Naive vote-sampling estimator of P^M (no exact inner step): the
/// ablation baseline for the Rao–Blackwellised estimator above.
Estimate estimate_correct_probability_naive(const mech::Mechanism& mechanism,
                                            const model::Instance& instance,
                                            rng::Rng& rng,
                                            const EvalOptions& options = {});

}  // namespace ld::election
