#include "ld/election/evaluator.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <thread>

#include "ld/delegation/realize.hpp"
#include "ld/election/engine.hpp"
#include "ld/election/tally.hpp"
#include "ld/election/workspace.hpp"
#include "prob/normal.hpp"
#include "prob/poisson_binomial.hpp"
#include "prob/weighted_bernoulli_sum.hpp"
#include "support/expect.hpp"
#include "support/metrics.hpp"
#include "support/stopwatch.hpp"
#include "support/thread_pool.hpp"

namespace ld::election {

using support::expects;

double exact_direct_probability(const model::Instance& instance) {
    return prob::direct_majority_probability(instance.competencies().values());
}

double exact_direct_probability_weighted(
    const model::Instance& instance, std::span<const std::uint64_t> initial_weights) {
    if (initial_weights.empty()) return exact_direct_probability(instance);
    expects(initial_weights.size() == instance.voter_count(),
            "exact_direct_probability_weighted: one weight per voter required");
    prob::WeightedBernoulliSum dist(initial_weights, instance.competencies().values());
    return dist.majority_probability();
}

double approx_direct_probability(const model::Instance& instance,
                                 std::span<const std::uint64_t> initial_weights) {
    expects(initial_weights.empty() ||
                initial_weights.size() == instance.voter_count(),
            "approx_direct_probability: one weight per voter required");
    const auto probs = instance.competencies().values();
    const std::size_t n = probs.size();
    if (n == 0) return 0.0;
    // Small juries: the exact DP is cheap and the CLT is not trustworthy.
    if (n <= 64) return exact_direct_probability_weighted(instance, initial_weights);
    double total = 0.0, mean = 0.0, var = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const double w =
            initial_weights.empty() ? 1.0 : static_cast<double>(initial_weights[i]);
        total += w;
        mean += w * probs[i];
        var += w * w * probs[i] * (1.0 - probs[i]);
    }
    if (var <= 0.0) return mean > total / 2.0 ? 1.0 : 0.0;
    return 1.0 - prob::normal_cdf(total / 2.0 + 0.5, mean, std::sqrt(var));
}

double exact_direct_mean_votes(const model::Instance& instance) {
    return instance.competencies().mean() * static_cast<double>(instance.voter_count());
}

namespace {

/// Validate eval options against the mechanism/instance up front, so a
/// misconfiguration fails before any replication runs instead of
/// mid-estimate (e.g. inner_samples == 0 used to surface only when the
/// first non-functional outcome appeared).
void validate_options(const mech::Mechanism& mechanism, const model::Instance& instance,
                      const EvalOptions& options) {
    expects(options.replications > 0, "estimate: need at least one replication");
    expects(options.threads >= 1, "estimate: need at least one thread");
    expects(options.initial_weights.empty() ||
                options.initial_weights.size() == instance.voter_count(),
            "estimate: initial_weights must be empty or one per voter");
    expects(!mechanism.multi_delegation() || options.inner_samples > 0,
            "estimate: inner_samples must be positive for multi-delegation "
            "mechanisms (their P^M has no exact inner step)");
    if (options.certify.enabled()) {
        expects(options.certify.delta < 1.0, "certify: delta must lie in (0, 1)");
        expects(std::isfinite(options.certify.gamma), "certify: gamma must be finite");
        expects(!options.approximate_tally,
                "certify: the Lemma-4 normal tally has no certified error "
                "bound; use the exact or truncated (tally_epsilon) route");
    }
}

ReplicationEngine& engine_for(const EvalOptions& options) {
    return options.engine ? *options.engine : ReplicationEngine::shared();
}

/// RAII wall-clock accounting for one estimate_* call: on destruction,
/// credits the replication count and elapsed time to the engine counters
/// and records the call's latency in the per-estimate histogram.  The
/// registry references are resolved once (they stay valid across reset()).
class EstimateTimer {
public:
    explicit EstimateTimer(std::size_t replications) : replications_(replications) {}

    /// Adaptive mode only learns the replication count at the end; let the
    /// caller correct the initial guess before the destructor credits it.
    void set_replications(std::size_t n) noexcept { replications_ = n; }

    ~EstimateTimer() {
        static support::Counter& replications =
            support::MetricsRegistry::global().counter("engine.replications");
        static support::Counter& replication_ns =
            support::MetricsRegistry::global().counter("engine.replication_ns");
        static support::LatencyHistogram& latency =
            support::MetricsRegistry::global().histogram("estimate.latency");
        replications.add(replications_);
        replication_ns.add(clock_.elapsed_ns());
        latency.record(clock_.elapsed_seconds());
    }

    EstimateTimer(const EstimateTimer&) = delete;
    EstimateTimer& operator=(const EstimateTimer&) = delete;

private:
    std::size_t replications_;
    support::Stopwatch clock_;
};

/// Rebuild `ws.outcome` from one sampled delegation realization, reusing
/// the workspace's buffers (no copy of the initial weights is taken).
void realize_with(const mech::Mechanism& mechanism, const model::Instance& instance,
                  rng::Rng& rng, const EvalOptions& options,
                  ReplicationWorkspace& ws) {
    delegation::realize_into(ws.outcome, ws.resolve, mechanism, instance, rng,
                             options.initial_weights, options.cycle_policy);
}

Estimate finish(const stats::RunningStats& acc, double confidence) {
    Estimate e;
    e.value = acc.mean();
    e.std_error = acc.standard_error();
    e.ci = stats::mean_interval(acc.mean(), acc.standard_error(), confidence);
    e.replications = acc.count();
    return e;
}

/// Per-replication statistics accumulated by one worker.
struct ReplicationStats {
    stats::RunningStats pm;
    stats::RunningStats delegators;
    stats::RunningStats max_weight;
    stats::RunningStats sinks;
    stats::RunningStats longest;

    void merge(const ReplicationStats& other) {
        pm.merge(other.pm);
        delegators.merge(other.delegators);
        max_weight.merge(other.max_weight);
        sinks.merge(other.sinks);
        longest.merge(other.longest);
    }
};

/// Batched exact route: realize up to TallyBatch::kMaxLanes outcomes,
/// stage their sink profiles, and advance all lanes' tally DPs in
/// lockstep (prob/batch_tally) instead of K sequential DPs.  Only legal
/// for mechanisms whose outcomes are always functional
/// (!multi_delegation(): tallies consume no RNG, so realization order
/// and the RNG stream match the sequential loop exactly) — and the
/// batched tally is bit-identical per lane, so every accumulated number
/// equals the sequential route bit for bit.
ReplicationStats run_replications_batched(const mech::Mechanism& mechanism,
                                          const model::Instance& instance,
                                          rng::Rng& rng, const EvalOptions& options,
                                          std::size_t count,
                                          ReplicationWorkspace& ws) {
    ReplicationStats acc;
    const auto& p = instance.competencies();
    TallyBatch& batch = ws.tally_batch;
    // Realized per-lane stats, copied out because `ws.outcome` is reused
    // by the next lane's realization.
    struct LaneStats {
        double delegators, max_weight, sinks, longest;
    };
    std::array<LaneStats, TallyBatch::kMaxLanes> lane_stats;
    std::size_t done = 0;
    while (done < count) {
        const std::size_t lanes = std::min(TallyBatch::kMaxLanes, count - done);
        batch.clear();
        for (std::size_t k = 0; k < lanes; ++k) {
            realize_with(mechanism, instance, rng, options, ws);
            expects(ws.outcome.functional(),
                    "estimate: batched tally requires functional outcomes");
            stage_tally_lane(batch, ws.outcome, p);
            const auto& st = ws.outcome.stats();
            lane_stats[k] = {static_cast<double>(st.delegator_count),
                             static_cast<double>(st.max_weight),
                             static_cast<double>(st.voting_sink_count),
                             static_cast<double>(st.longest_path)};
        }
        tally_staged(batch);
        // Accumulate in replication order (Welford updates are
        // order-dependent), exactly as the sequential loop would.
        for (std::size_t k = 0; k < lanes; ++k) {
            acc.max_weight.add(lane_stats[k].max_weight);
            acc.sinks.add(lane_stats[k].sinks);
            acc.longest.add(lane_stats[k].longest);
            acc.pm.add(batch.result[k]);
            acc.delegators.add(lane_stats[k].delegators);
        }
        done += lanes;
    }
    return acc;
}

/// Run `count` replications sequentially with the given generator,
/// recycling the worker's workspace between replications.
ReplicationStats run_replications(const mech::Mechanism& mechanism,
                                  const model::Instance& instance, rng::Rng& rng,
                                  const EvalOptions& options, std::size_t count,
                                  ReplicationWorkspace& ws) {
    // The exact functional route batches: K replications per instruction
    // stream through the SoA lockstep kernels.  Approximate/truncated
    // tallies and multi-delegation inner sampling stay sequential (the
    // latter interleaves RNG draws with realization, which batching
    // would reorder); their convolutions still go through the dispatched
    // SIMD kernels.
    if (!mechanism.multi_delegation() && !options.approximate_tally &&
        options.tally_epsilon == 0.0 && count > 1) {
        return run_replications_batched(mechanism, instance, rng, options, count, ws);
    }
    ReplicationStats acc;
    const auto& p = instance.competencies();
    for (std::size_t r = 0; r < count; ++r) {
        realize_with(mechanism, instance, rng, options, ws);
        const auto& outcome = ws.outcome;
        double pm_r;
        if (outcome.functional()) {
            if (options.approximate_tally) {
                pm_r = approx_correct_probability(outcome, p, ws.tally);
            } else if (options.tally_epsilon > 0.0) {
                pm_r = truncated_correct_probability(outcome, p,
                                                     options.tally_epsilon, ws.tally);
            } else {
                pm_r = exact_correct_probability(outcome, p, ws.tally);
            }
            const auto& st = outcome.stats();
            acc.max_weight.add(static_cast<double>(st.max_weight));
            acc.sinks.add(static_cast<double>(st.voting_sink_count));
            acc.longest.add(static_cast<double>(st.longest_path));
        } else {
            expects(options.inner_samples > 0, "estimate: need inner samples");
            // One topological order per realization, shared by all inner
            // samples (the digraph is fixed within a replication).
            ws.topo_order = outcome.as_digraph().topological_order();
            std::size_t correct = 0;
            for (std::size_t s = 0; s < options.inner_samples; ++s) {
                if (sample_outcome_correct(outcome, p, rng, ws.topo_order, ws.tally)) {
                    ++correct;
                }
            }
            pm_r = static_cast<double>(correct) /
                   static_cast<double>(options.inner_samples);
        }
        acc.pm.add(pm_r);
        acc.delegators.add(static_cast<double>(outcome.stats().delegator_count));
    }
    return acc;
}

/// Adaptive replication loop: rounds of `options.adaptive_batch`
/// replications, stopping once the merged P^M standard error reaches
/// `options.target_std_error` (needs ≥ 2 reps — one sample has no SE) or
/// `options.max_replications` is hit.  Determinism for fixed
/// (seed, threads): worker streams are split once up front and persist
/// across rounds, each round splits its batch base/extra across workers
/// exactly like the fixed path, per-worker partials accumulate locally,
/// and the stopping statistic is recomputed from a worker-ordered merge —
/// nothing depends on scheduling.
ReplicationStats run_adaptive_replications(const mech::Mechanism& mechanism,
                                           const model::Instance& instance,
                                           rng::Rng& rng, const EvalOptions& options,
                                           std::size_t& replications_done) {
    expects(options.adaptive_batch > 0, "estimate: adaptive_batch must be positive");
    expects(options.max_replications > 0,
            "estimate: max_replications must be positive");
    static support::Counter& rounds_counter =
        support::MetricsRegistry::global().counter("eval.adaptive_batches");
    ReplicationEngine& engine = engine_for(options);
    const std::size_t cap = options.max_replications;
    const std::size_t batch = std::min(options.adaptive_batch, cap);
    const std::size_t threads = std::min(options.threads, batch);

    std::vector<rng::Rng> streams;
    if (threads > 1) {
        streams.reserve(threads);
        for (std::size_t t = 0; t < threads; ++t) streams.push_back(rng.split());
    }
    std::vector<ReplicationStats> partials(threads);
    ReplicationStats merged;
    std::size_t done = 0;
    while (true) {
        const std::size_t round = std::min(batch, cap - done);
        if (threads == 1) {
            partials[0].merge(run_replications(mechanism, instance, rng, options,
                                               round, engine.local_workspace()));
        } else {
            const std::size_t base = round / threads;
            const std::size_t extra = round % threads;
            const auto chunk = [&](std::size_t t, std::size_t count) {
                partials[t].merge(run_replications(mechanism, instance, streams[t],
                                                   options, count,
                                                   engine.local_workspace()));
            };
            if (options.use_thread_pool) {
                support::TaskGroup group(engine.pool());
                for (std::size_t t = 0; t < threads; ++t) {
                    const std::size_t count = base + (t < extra ? 1 : 0);
                    if (count > 0) group.submit([&chunk, t, count] { chunk(t, count); });
                }
                group.wait();
            } else {
                std::vector<std::thread> workers;
                workers.reserve(threads);
                for (std::size_t t = 0; t < threads; ++t) {
                    const std::size_t count = base + (t < extra ? 1 : 0);
                    if (count > 0) workers.emplace_back([&chunk, t, count] { chunk(t, count); });
                }
                for (auto& w : workers) w.join();
            }
        }
        done += round;
        rounds_counter.add(1);
        merged = ReplicationStats{};
        for (const auto& partial : partials) merged.merge(partial);
        if (done >= cap) break;
        if (merged.pm.count() >= 2 &&
            merged.pm.standard_error() <= options.target_std_error) {
            break;
        }
    }
    replications_done = done;
    return merged;
}

/// Seed of the i-th replication of a certified run.  The same SplitMix64
/// remix the sweep engine uses for per-cell seeds: one master value
/// (drawn once from the caller's stream) fans out to decorrelated
/// per-index seeds, so replication i's samples depend only on
/// (master, i) — never on which worker ran it or how many workers exist.
std::uint64_t certified_replication_seed(std::uint64_t master, std::size_t index) {
    rng::SplitMix64 mix(master ^ (0x9e3779b97f4a7c15ULL *
                                  (static_cast<std::uint64_t>(index) + 1)));
    return mix.next();
}

/// One certified replication's outputs, buffered per index so the caller
/// can fold them in replication order regardless of which worker
/// produced them.
struct CertSample {
    double pm = 0.0;
    double delegators = 0.0;
    double max_weight = 0.0;
    double sinks = 0.0;
    double longest = 0.0;
    bool functional = false;
};

/// Run certified replications for indices [first, first + count), each
/// from its own derived RNG, writing results into out[0..count).  The
/// exact functional route still batches through the SoA tally kernels —
/// legal here because each lane's realization consumes only its own
/// per-index stream, so lane order cannot leak into the samples.
void run_certified_chunk(const mech::Mechanism& mechanism,
                         const model::Instance& instance, const EvalOptions& options,
                         std::uint64_t master, std::size_t first, std::size_t count,
                         ReplicationWorkspace& ws, CertSample* out) {
    const auto& p = instance.competencies();
    const auto record_shape = [](CertSample& s, const auto& st, bool functional) {
        s.delegators = static_cast<double>(st.delegator_count);
        s.max_weight = static_cast<double>(st.max_weight);
        s.sinks = static_cast<double>(st.voting_sink_count);
        s.longest = static_cast<double>(st.longest_path);
        s.functional = functional;
    };
    if (!mechanism.multi_delegation() && !options.approximate_tally &&
        options.tally_epsilon == 0.0 && count > 1) {
        TallyBatch& batch = ws.tally_batch;
        std::size_t done = 0;
        while (done < count) {
            const std::size_t lanes = std::min(TallyBatch::kMaxLanes, count - done);
            batch.clear();
            for (std::size_t k = 0; k < lanes; ++k) {
                rng::Rng rep_rng(certified_replication_seed(master, first + done + k));
                realize_with(mechanism, instance, rep_rng, options, ws);
                expects(ws.outcome.functional(),
                        "estimate: batched tally requires functional outcomes");
                stage_tally_lane(batch, ws.outcome, p);
                record_shape(out[done + k], ws.outcome.stats(), true);
            }
            tally_staged(batch);
            for (std::size_t k = 0; k < lanes; ++k) out[done + k].pm = batch.result[k];
            done += lanes;
        }
        return;
    }
    for (std::size_t r = 0; r < count; ++r) {
        rng::Rng rep_rng(certified_replication_seed(master, first + r));
        realize_with(mechanism, instance, rep_rng, options, ws);
        const auto& outcome = ws.outcome;
        CertSample& s = out[r];
        if (outcome.functional()) {
            s.pm = options.tally_epsilon > 0.0
                       ? truncated_correct_probability(outcome, p,
                                                       options.tally_epsilon, ws.tally)
                       : exact_correct_probability(outcome, p, ws.tally);
            record_shape(s, outcome.stats(), true);
        } else {
            ws.topo_order = outcome.as_digraph().topological_order();
            std::size_t correct = 0;
            for (std::size_t i = 0; i < options.inner_samples; ++i) {
                if (sample_outcome_correct(outcome, p, rep_rng, ws.topo_order,
                                           ws.tally)) {
                    ++correct;
                }
            }
            s.pm = static_cast<double>(correct) /
                   static_cast<double>(options.inner_samples);
            record_shape(s, outcome.stats(), false);
            s.functional = false;
        }
    }
}

struct CertifiedRun {
    ReplicationStats stats;             ///< folded in replication-index order
    stats::CertifiedEstimate certificate;
};

/// Certified anytime-valid replication loop: rounds of `adaptive_batch`
/// replications, a confidence-sequence look after each round, stopping
/// when the certified interval (statistical half-width + the ε/2
/// truncated-tally bound) clears `threshold` on either side or
/// `max_replications` is exhausted.
///
/// Determinism contract (stronger than run_adaptive_replications): every
/// replication draws from a seed derived from (master, index) alone, and
/// all folding — Welford accumulators and the confidence sequence — walks
/// the round buffer in index order.  The stop point, certificate, and
/// every report field are therefore bit-identical across *different*
/// thread counts for a fixed seed, not merely for fixed (seed, threads).
CertifiedRun run_certified_replications(const mech::Mechanism& mechanism,
                                        const model::Instance& instance,
                                        rng::Rng& rng, const EvalOptions& options,
                                        double threshold) {
    const CertifySpec& spec = options.certify;
    expects(options.adaptive_batch > 0, "estimate: adaptive_batch must be positive");
    expects(options.max_replications > 0,
            "estimate: max_replications must be positive");
    static support::Counter& looks_counter =
        support::MetricsRegistry::global().counter("cert.boundary_evals");
    static support::Gauge& stop_gauge =
        support::MetricsRegistry::global().gauge("cert.stop_reason");
    static support::Gauge& width_gauge =
        support::MetricsRegistry::global().gauge("cert.final_half_width_ppm");

    ReplicationEngine& engine = engine_for(options);
    const std::uint64_t master = rng.next();
    const std::size_t cap = options.max_replications;
    const std::size_t batch = std::min(options.adaptive_batch, cap);
    // Each truncated-tally sample is within ε/2 of its exact value, so the
    // sample mean is within ε/2 of the exact-tally sample mean; widening
    // the statistical interval by ε/2 per side covers it (exact DP: 0).
    const double num_err = options.tally_epsilon / 2.0;

    stats::ConfidenceSequence cs(spec.boundary, spec.delta);
    CertifiedRun run;
    run.certificate.delta = spec.delta;
    run.certificate.numerical_error = num_err;
    std::vector<CertSample> round(batch);

    std::size_t done = 0;
    while (true) {
        const std::size_t round_n = std::min(batch, cap - done);
        const std::size_t threads = std::min(options.threads, round_n);
        if (threads <= 1) {
            run_certified_chunk(mechanism, instance, options, master, done, round_n,
                                engine.local_workspace(), round.data());
        } else {
            const std::size_t base = round_n / threads;
            const std::size_t extra = round_n % threads;
            const auto chunk = [&](std::size_t offset, std::size_t count) {
                run_certified_chunk(mechanism, instance, options, master,
                                    done + offset, count, engine.local_workspace(),
                                    round.data() + offset);
            };
            if (options.use_thread_pool) {
                support::TaskGroup group(engine.pool());
                std::size_t offset = 0;
                for (std::size_t t = 0; t < threads; ++t) {
                    const std::size_t count = base + (t < extra ? 1 : 0);
                    if (count > 0) {
                        group.submit([&chunk, offset, count] { chunk(offset, count); });
                    }
                    offset += count;
                }
                group.wait();
            } else {
                std::vector<std::thread> workers;
                workers.reserve(threads);
                std::size_t offset = 0;
                for (std::size_t t = 0; t < threads; ++t) {
                    const std::size_t count = base + (t < extra ? 1 : 0);
                    if (count > 0) {
                        workers.emplace_back(
                            [&chunk, offset, count] { chunk(offset, count); });
                    }
                    offset += count;
                }
                for (auto& w : workers) w.join();
            }
        }
        for (std::size_t k = 0; k < round_n; ++k) {
            const CertSample& s = round[k];
            // Truncated-tally midpoints can poke ε/2 past [0, 1]; clamping
            // moves a sample by at most its own numerical error, which the
            // ε/2 widening below already budgets for.
            const double pm = std::clamp(s.pm, 0.0, 1.0);
            cs.add(pm);
            run.stats.pm.add(pm);
            run.stats.delegators.add(s.delegators);
            if (s.functional) {
                run.stats.max_weight.add(s.max_weight);
                run.stats.sinks.add(s.sinks);
                run.stats.longest.add(s.longest);
            }
        }
        done += round_n;
        // The empirical-Bernstein half-width divides by t − 1; defer the
        // first look until two observations exist (batch == cap == 1).
        const bool can_look = spec.boundary != stats::CsBoundary::EmpiricalBernstein ||
                              cs.count() >= 2;
        if (can_look) {
            const stats::Interval iv = cs.look();
            looks_counter.add(1);
            run.certificate.lo = std::clamp(iv.lo - num_err, 0.0, 1.0);
            run.certificate.hi = std::clamp(iv.hi + num_err, 0.0, 1.0);
            if (run.certificate.lo >= threshold) {
                run.certificate.stop = stats::CertStop::DecidedAbove;
                break;
            }
            if (run.certificate.hi < threshold) {
                run.certificate.stop = stats::CertStop::DecidedBelow;
                break;
            }
        }
        if (done >= cap) break;
    }
    run.certificate.replications = done;
    run.certificate.looks = cs.looks();
    stop_gauge.set(static_cast<std::int64_t>(run.certificate.stop));
    width_gauge.set(static_cast<std::int64_t>(
        std::llround(run.certificate.half_width() * 1e6)));
    return run;
}

/// Run `options.replications` replications, fanning out to
/// `options.threads` workers with independent jumped RNG streams on the
/// engine's persistent pool (or, legacy path, on freshly spawned threads).
ReplicationStats run_all_replications(const mech::Mechanism& mechanism,
                                      const model::Instance& instance, rng::Rng& rng,
                                      const EvalOptions& options) {
    validate_options(mechanism, instance, options);
    EstimateTimer timer(options.replications);
    if (options.target_std_error > 0.0) {
        std::size_t done = 0;
        auto merged =
            run_adaptive_replications(mechanism, instance, rng, options, done);
        timer.set_replications(done);
        return merged;
    }
    ReplicationEngine& engine = engine_for(options);
    const std::size_t threads =
        std::min(options.threads, options.replications);
    if (threads == 1) {
        return run_replications(mechanism, instance, rng, options,
                                options.replications, engine.local_workspace());
    }
    // Derive one independent stream per worker up front (split mutates the
    // parent, keeping the whole run deterministic for fixed seed+threads).
    std::vector<rng::Rng> streams;
    streams.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) streams.push_back(rng.split());

    std::vector<ReplicationStats> partials(threads);
    const std::size_t base = options.replications / threads;
    const std::size_t extra = options.replications % threads;
    const auto chunk = [&](std::size_t t, std::size_t count) {
        partials[t] = run_replications(mechanism, instance, streams[t], options,
                                       count, engine.local_workspace());
    };
    if (options.use_thread_pool) {
        support::TaskGroup group(engine.pool());
        for (std::size_t t = 0; t < threads; ++t) {
            const std::size_t count = base + (t < extra ? 1 : 0);
            group.submit([&chunk, t, count] { chunk(t, count); });
        }
        group.wait();
    } else {
        std::vector<std::thread> workers;
        workers.reserve(threads);
        for (std::size_t t = 0; t < threads; ++t) {
            const std::size_t count = base + (t < extra ? 1 : 0);
            workers.emplace_back([&chunk, t, count] { chunk(t, count); });
        }
        for (auto& w : workers) w.join();
    }
    ReplicationStats merged;
    for (const auto& partial : partials) merged.merge(partial);
    return merged;
}

}  // namespace

Estimate estimate_correct_probability(const mech::Mechanism& mechanism,
                                      const model::Instance& instance, rng::Rng& rng,
                                      const EvalOptions& options) {
    if (options.certify.enabled()) {
        validate_options(mechanism, instance, options);
        EstimateTimer timer(0);
        // No gain baseline here: the certificate decides P^M ≥ γ directly.
        const auto run = run_certified_replications(mechanism, instance, rng,
                                                    options, options.certify.gamma);
        timer.set_replications(run.certificate.replications);
        Estimate e = finish(run.stats.pm, options.confidence);
        e.certified = run.certificate;
        return e;
    }
    const auto acc = run_all_replications(mechanism, instance, rng, options);
    return finish(acc.pm, options.confidence);
}

Estimate estimate_correct_probability_naive(const mech::Mechanism& mechanism,
                                            const model::Instance& instance,
                                            rng::Rng& rng, const EvalOptions& options) {
    validate_options(mechanism, instance, options);
    const EstimateTimer timer(options.replications);
    stats::RunningStats acc;
    const auto& p = instance.competencies();
    ReplicationWorkspace& ws = engine_for(options).local_workspace();
    for (std::size_t r = 0; r < options.replications; ++r) {
        realize_with(mechanism, instance, rng, options, ws);
        acc.add(sample_outcome_correct(ws.outcome, p, rng) ? 1.0 : 0.0);
    }
    return finish(acc, options.confidence);
}

GainReport estimate_gain(const mech::Mechanism& mechanism,
                         const model::Instance& instance, rng::Rng& rng,
                         const EvalOptions& options) {
    GainReport report;
    report.pd = options.approximate_tally
                    ? approx_direct_probability(instance, options.initial_weights)
                    : exact_direct_probability_weighted(instance, options.initial_weights);
    ReplicationStats acc;
    if (options.certify.enabled()) {
        validate_options(mechanism, instance, options);
        EstimateTimer timer(0);
        // Decide "gain ≥ γ" on the P^M scale: P^D is exact, so the claim
        // is equivalent to P^M ≥ P^D + γ.
        const auto run = run_certified_replications(mechanism, instance, rng,
                                                    options,
                                                    report.pd + options.certify.gamma);
        timer.set_replications(run.certificate.replications);
        acc = run.stats;
        report.pm = finish(acc.pm, options.confidence);
        report.pm.certified = run.certificate;
        report.certified_gain = stats::Interval{run.certificate.lo - report.pd,
                                                run.certificate.hi - report.pd};
    } else {
        acc = run_all_replications(mechanism, instance, rng, options);
        report.pm = finish(acc.pm, options.confidence);
    }
    report.gain = report.pm.value - report.pd;
    report.gain_ci = {report.pm.ci.lo - report.pd, report.pm.ci.hi - report.pd};
    report.mean_delegators = acc.delegators.mean();
    report.mean_max_weight = acc.max_weight.mean();
    report.mean_sinks = acc.sinks.mean();
    report.mean_longest_path = acc.longest.mean();
    return report;
}

VarianceReport estimate_variance(const mech::Mechanism& mechanism,
                                 const model::Instance& instance, rng::Rng& rng,
                                 const EvalOptions& options) {
    validate_options(mechanism, instance, options);
    expects(options.replications > 1, "estimate_variance: need >= 2 replications");
    const EstimateTimer timer(options.replications);
    VarianceReport report;
    report.direct_variance = instance.competencies().outcome_variance();

    stats::RunningStats cond_var, cond_mean;
    const auto& p = instance.competencies();
    ReplicationWorkspace& ws = engine_for(options).local_workspace();
    for (std::size_t r = 0; r < options.replications; ++r) {
        realize_with(mechanism, instance, rng, options, ws);
        expects(ws.outcome.functional(),
                "estimate_variance: multi-delegation outcomes unsupported");
        cond_var.add(conditional_vote_variance(ws.outcome, p));
        cond_mean.add(conditional_vote_mean(ws.outcome, p));
    }
    report.mean_conditional_variance = cond_var.mean();
    report.variance_of_conditional_mean = cond_mean.variance();
    report.total_variance =
        report.mean_conditional_variance + report.variance_of_conditional_mean;
    report.mean_conditional_mean = cond_mean.mean();
    return report;
}

}  // namespace ld::election
