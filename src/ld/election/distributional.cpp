#include "ld/election/distributional.hpp"

#include <algorithm>

#include "support/expect.hpp"

namespace ld::election {

using support::expects;

DistributionalGainReport estimate_gain_over_distribution(
    const mech::Mechanism& mechanism, const graph::Graph& graph, double alpha,
    const CompetencySampler& sampler, rng::Rng& rng, std::size_t draws,
    const EvalOptions& options) {
    expects(draws > 0, "estimate_gain_over_distribution: need at least one draw");
    expects(static_cast<bool>(sampler), "estimate_gain_over_distribution: empty sampler");

    stats::RunningStats gain_acc, pd_acc, pm_acc;
    double worst = 1.0, best = -1.0;
    for (std::size_t d = 0; d < draws; ++d) {
        model::Instance instance(graph, sampler(graph.vertex_count(), rng), alpha);
        const auto report = estimate_gain(mechanism, instance, rng, options);
        gain_acc.add(report.gain);
        pd_acc.add(report.pd);
        pm_acc.add(report.pm.value);
        worst = std::min(worst, report.gain);
        best = std::max(best, report.gain);
    }
    const auto finish = [&](const stats::RunningStats& acc) {
        Estimate e;
        e.value = acc.mean();
        e.std_error = acc.standard_error();
        e.ci = stats::mean_interval(acc.mean(), acc.standard_error(), options.confidence);
        e.replications = acc.count();
        return e;
    };
    DistributionalGainReport out;
    out.gain = finish(gain_acc);
    out.pd = finish(pd_acc);
    out.pm = finish(pm_acc);
    out.worst_gain = worst;
    out.best_gain = best;
    out.draws = draws;
    return out;
}

}  // namespace ld::election
