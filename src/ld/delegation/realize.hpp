// Sampling one delegation graph from a mechanism on an instance — the step
// "for each voter, we sample delegates from the probability distribution
// output from M" (paper §2.2).

#pragma once

#include <span>

#include "ld/delegation/delegation_graph.hpp"
#include "ld/mech/mechanism.hpp"
#include "ld/model/instance.hpp"
#include "rng/rng.hpp"

namespace ld::delegation {

/// Sample every voter's action independently and resolve the outcome.
DelegationOutcome realize(const mech::Mechanism& mechanism,
                          const model::Instance& instance, rng::Rng& rng);

/// As `realize`, but with per-voter initial vote weights (e.g. DAO token
/// balances) and an explicit cycle policy — pass CyclePolicy::Discard for
/// non-approval-respecting mechanisms (e.g. noisy-approval mechanisms)
/// whose realized graphs may contain cycles.  The weights are only read
/// during construction (no copy is taken).
DelegationOutcome realize_weighted(const mech::Mechanism& mechanism,
                                   const model::Instance& instance, rng::Rng& rng,
                                   std::span<const std::uint64_t> initial_weights,
                                   CyclePolicy cycle_policy = CyclePolicy::Throw);

/// Zero-allocation realization into a reused outcome: refills
/// `outcome`'s action buffers via Mechanism::act_into and re-resolves in
/// place using `scratch`.  Draws the same RNG stream and produces the same
/// outcome as `realize_weighted`; after the first few calls on a workspace
/// the steady state performs no heap allocation at all.
void realize_into(DelegationOutcome& outcome,
                  DelegationOutcome::ResolveScratch& scratch,
                  const mech::Mechanism& mechanism, const model::Instance& instance,
                  rng::Rng& rng, std::span<const std::uint64_t> initial_weights = {},
                  CyclePolicy cycle_policy = CyclePolicy::Throw);

/// Expected number of direct voters Σ_v P[v votes directly], when the
/// mechanism exposes exact per-voter probabilities; used to verify the
/// Delegate(n) >= f(n) restriction (Definition 2) analytically.
/// Returns a negative value if the mechanism has no closed form.
double expected_direct_voter_count(const mech::Mechanism& mechanism,
                                   const model::Instance& instance);

}  // namespace ld::delegation
