#include "ld/delegation/concentration.hpp"

#include <algorithm>
#include <vector>

#include "support/expect.hpp"

namespace ld::delegation {

using support::expects;

ConcentrationMetrics concentration_metrics(const DelegationOutcome& outcome) {
    expects(outcome.functional(),
            "concentration_metrics: outcome is not functional (multi-delegation)");
    ConcentrationMetrics m;
    const auto& all_weights = outcome.weights();
    std::vector<double> w;
    w.reserve(outcome.voting_sinks().size());
    double total = 0.0;
    for (graph::Vertex s : outcome.voting_sinks()) {
        w.push_back(static_cast<double>(all_weights[s]));
        total += w.back();
    }
    if (w.empty() || total <= 0.0) return m;
    std::sort(w.begin(), w.end(), std::greater<>());
    const auto k = w.size();

    // Gini via the sorted-weights formula:
    //   G = (Σ_i (2i − k − 1)·w_(i)) / (k·Σ w)   with w_(i) ascending.
    double gini_acc = 0.0;
    for (std::size_t i = 0; i < k; ++i) {
        const double ascending = w[k - 1 - i];  // w sorted descending
        gini_acc += (2.0 * static_cast<double>(i + 1) - static_cast<double>(k) - 1.0) *
                    ascending;
    }
    m.gini = gini_acc / (static_cast<double>(k) * total);

    double hhi = 0.0;
    for (double weight : w) {
        const double share = weight / total;
        hhi += share * share;
    }
    m.hhi = hhi;
    m.effective_sinks = 1.0 / hhi;
    m.top1_share = w.front() / total;

    const std::size_t decile = (k + 9) / 10;  // ceil(k / 10)
    double decile_sum = 0.0;
    for (std::size_t i = 0; i < decile; ++i) decile_sum += w[i];
    m.top_decile_share = decile_sum / total;

    double running = 0.0;
    for (std::size_t i = 0; i < k; ++i) {
        running += w[i];
        if (running * 2.0 > total) {
            m.nakamoto = i + 1;
            break;
        }
    }
    return m;
}

}  // namespace ld::delegation
