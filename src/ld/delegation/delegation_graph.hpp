// The realized delegation graph (paper §2.2): after sampling each voter's
// decision from a mechanism, votes flow along delegation arcs and pool at
// the *sinks* — voters who vote directly.  This type stores one realization
// and the derived quantities every analysis needs:
//
//  * sink resolution (with path compression),
//  * per-sink accumulated weights w_i (including self-votes),
//  * delegation statistics: #delegators, #sinks, max weight, longest
//    delegation path (the realized partition complexity).
//
// Abstention semantics (§6): an abstaining voter is an absorbing node that
// casts no vote; votes delegated into an abstainer are discarded with it.
// The paper's restriction — only would-be delegators may abstain — keeps
// this harmless for DNH.

#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "graph/digraph.hpp"
#include "graph/graph.hpp"
#include "ld/mech/mechanism.hpp"

namespace ld::delegation {

/// Summary statistics of one realized delegation graph.
struct DelegationStats {
    std::size_t delegator_count = 0;  ///< voters who forwarded their vote
    std::size_t abstainer_count = 0;  ///< voters who abstained (§6)
    std::size_t voting_sink_count = 0;  ///< sinks that actually cast a vote
    std::uint64_t max_weight = 0;       ///< heaviest voting sink
    std::uint64_t cast_weight = 0;      ///< total votes cast (n − lost)
    std::size_t longest_path = 0;       ///< realized partition complexity
};

/// How to treat a delegation cycle (only non-approval-respecting
/// mechanisms — e.g. ones acting on noisy competency comparisons — can
/// produce one).
enum class CyclePolicy : std::uint8_t {
    Throw,    ///< cycles are a programming error: throw ContractViolation
    Discard,  ///< votes trapped in (or draining into) a cycle are lost
};

/// One realized delegation graph over n voters.
///
/// Only *functional* realizations (every delegator has exactly one target)
/// support sink/weight queries; multi-target realizations (§6 weighted
/// majority) expose targets for the evaluator to resolve by simulation.
class DelegationOutcome {
public:
    /// Sentinel meaning "no sink" (abstained, drained into an abstainer,
    /// or — under CyclePolicy::Discard — trapped in a cycle).
    static constexpr graph::Vertex kNoSink = std::numeric_limits<graph::Vertex>::max();

    /// Reusable scratch for `resolve`: chain-walk and per-voter depth
    /// buffers that would otherwise be reallocated every realization.
    /// Owned by the caller (typically a ReplicationWorkspace) so repeated
    /// rebuilds are allocation-free.
    struct ResolveScratch {
        std::vector<std::size_t> depth;          // delegation-path length to sink
        std::vector<std::uint8_t> lost_to_cycle; // votes draining into a cycle
        std::vector<graph::Vertex> chain;        // current walk, for compression
    };

    /// An empty outcome (0 voters); fill it via begin_rebuild/finish_rebuild
    /// (the workspace path) or assign over it.
    DelegationOutcome() = default;

    /// Build from per-voter actions.  Under CyclePolicy::Throw (default),
    /// throws `ContractViolation` if a single-target delegation cycle
    /// exists (approval-respecting mechanisms cannot produce one because
    /// α > 0).
    ///
    /// `initial_weights` (optional) assigns each voter a starting vote
    /// weight — e.g. DAO token balances — instead of the model's one vote
    /// per voter; it must be empty or have one entry per voter.  The span
    /// is only read during construction, never stored.
    explicit DelegationOutcome(std::vector<mech::Action> actions,
                               std::span<const std::uint64_t> initial_weights = {},
                               CyclePolicy cycle_policy = CyclePolicy::Throw);

    /// Zero-allocation rebuild, step 1: clear derived state and expose the
    /// actions buffer for refilling (capacity is retained, including each
    /// action's `targets` vector — pair with Mechanism::act_into).  The
    /// outcome is in an unusable intermediate state until finish_rebuild.
    std::vector<mech::Action>& begin_rebuild();

    /// Zero-allocation rebuild, step 2: validate the refilled actions and
    /// resolve sinks/weights/stats, reusing this outcome's buffers and the
    /// caller's scratch.  Semantically identical to constructing a fresh
    /// outcome from the same actions.
    void finish_rebuild(std::span<const std::uint64_t> initial_weights,
                        CyclePolicy cycle_policy, ResolveScratch& scratch);

    std::size_t voter_count() const noexcept { return actions_.size(); }

    const mech::Action& action(graph::Vertex v) const { return actions_[v]; }

    /// True iff every delegation has exactly one target.
    bool functional() const noexcept { return functional_; }

    /// The sink voter `v`'s vote finally rests with, or `kNoSink` if the
    /// vote was discarded by an abstainer.  Requires `functional()`.
    graph::Vertex sink_of(graph::Vertex v) const;

    /// Accumulated weight (vote count, incl. self) of each voter; nonzero
    /// only for voting sinks.  Requires `functional()`.
    const std::vector<std::uint64_t>& weights() const;

    /// All voting sinks, ascending.  Requires `functional()`.
    const std::vector<graph::Vertex>& voting_sinks() const;

    /// Realized statistics.  Requires `functional()` for the weight/sink
    /// fields; multi-target outcomes still fill delegator/abstainer counts.
    const DelegationStats& stats() const noexcept { return stats_; }

    /// View as a digraph (delegation arcs only), e.g. for DOT export.
    graph::Digraph as_digraph() const;

    /// Number of voters whose vote was discarded by a cycle (always 0
    /// under CyclePolicy::Throw).
    std::size_t cycle_losses() const noexcept { return cycle_losses_; }

private:
    void validate(std::span<const std::uint64_t> initial_weights) const;
    void resolve(std::span<const std::uint64_t> initial_weights,
                 CyclePolicy cycle_policy, ResolveScratch& scratch);

    std::vector<mech::Action> actions_;
    std::size_t cycle_losses_ = 0;
    bool functional_ = true;
    std::vector<graph::Vertex> sink_;          // resolved terminal per voter
    std::vector<std::uint64_t> weights_;       // votes pooled per voter
    std::vector<graph::Vertex> voting_sinks_;  // ascending
    DelegationStats stats_;
};

}  // namespace ld::delegation
