// Incremental sink resolution under delegation churn (docs/CHURN.md).
//
// A DelegationOutcome is immutable: one voter flipping their action costs a
// full O(n) re-resolution.  Production liquid democracy is a *live* process
// — voters re-delegate continuously — so the heavy-traffic case is a
// single-edge delta against an already-resolved state.  DynamicResolution
// maintains the same derived state as DelegationOutcome::resolve (sinks,
// pooled weights, depths, delegation stats) under single-voter mutations:
//
//  * the delegation forest is stored with intrusive child lists
//    (first_child / next_sibling / prev_sibling), so unlinking a voter from
//    their old target is O(1);
//  * subtree weights are maintained along the (short) chain from the old
//    and new attach points to their terminals — O(depth) per patch;
//  * sinks and depths are repaired by walking only the patched voter's
//    subtree (the dirty region), with a full-rebuild fallback once the
//    dirty region exceeds `rebuild_fraction · n`;
//  * a patch that would close a delegation cycle is detected by walking
//    the target's chain before any state is touched, and rejected with the
//    state unchanged.
//
// Results are bit-identical to re-resolving from scratch: sinks, weights,
// voting-sink sets, and every DelegationStats field match EXPECT_EQ
// (tests/test_incremental.cpp drives randomized patch sequences against
// the reference).  Only cycle-free functional states are supported —
// exactly the states a sequence of accepted patches can produce.

#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "ld/delegation/delegation_graph.hpp"
#include "ld/mech/mechanism.hpp"

namespace ld::delegation {

class DynamicResolution {
public:
    static constexpr graph::Vertex kNoSink = DelegationOutcome::kNoSink;

    /// A voting sink whose pooled weight changed under a patch (at most
    /// two per patch: the old terminal and the new one).  `weight == 0`
    /// means the voter stopped being a voting sink.
    struct SinkChange {
        graph::Vertex sink = kNoSink;
        std::uint64_t weight = 0;
    };

    /// Outcome of one patch application.
    struct PatchResult {
        bool applied = false;         ///< state advanced (false: no-op/cycle)
        bool cycle_rejected = false;  ///< the patch would close a cycle
        bool rebuilt = false;         ///< dirty region tripped a full rebuild
        std::size_t dirty = 0;        ///< voters whose sink/depth was repaired
        std::size_t change_count = 0; ///< valid prefix of `changes`
        std::array<SinkChange, 2> changes{};  ///< pooled-weight deltas
    };

    DynamicResolution() = default;

    /// Initialize from a resolved outcome (functional, cycle-free).
    /// `initial_weights` must match the weights the outcome was built with.
    void reset(const DelegationOutcome& outcome,
               std::span<const std::uint64_t> initial_weights = {});

    /// Initialize to the all-vote profile over n voters — the natural
    /// starting state of a live instance (every voter casts their own
    /// vote until a patch says otherwise).
    void reset_all_vote(std::size_t n,
                        std::span<const std::uint64_t> initial_weights = {});

    std::size_t voter_count() const noexcept { return kind_.size(); }

    /// Patch voter `v`'s action.  Each is an *absolute* assignment, so
    /// replaying a patch is idempotent (the serve layer's at-least-once
    /// delivery depends on this).
    PatchResult set_vote(graph::Vertex v);
    PatchResult set_abstain(graph::Vertex v);
    /// `target == v` counts as voting (matches DelegationOutcome).
    PatchResult set_delegate(graph::Vertex v, graph::Vertex target);

    mech::ActionKind kind(graph::Vertex v) const { return kind_[v]; }
    /// Delegation target (valid when kind == Delegate).
    graph::Vertex target(graph::Vertex v) const { return target_[v]; }

    graph::Vertex sink_of(graph::Vertex v) const { return sink_[v]; }
    std::size_t depth_of(graph::Vertex v) const { return depth_[v]; }

    /// Pooled weight at voter `v` (nonzero only for voting sinks).
    std::uint64_t pooled_weight(graph::Vertex v) const;

    /// Voter `v`'s own starting vote weight (1 unless initial weights
    /// were supplied) — the direct-voting baseline's factor weight.
    std::uint64_t initial_weight(graph::Vertex v) const { return weight_in_[v]; }

    /// True iff `v` currently casts a vote (Vote or self-delegation).
    bool is_voting(graph::Vertex v) const;

    std::uint64_t cast_weight() const noexcept { return cast_weight_; }
    std::size_t voting_sink_count() const noexcept { return voting_sink_count_; }

    /// Full per-voter pooled-weight vector (matches
    /// DelegationOutcome::weights()).  O(n); for tests and snapshots.
    std::vector<std::uint64_t> weights() const;

    /// All voting sinks, ascending (matches voting_sinks()).  O(n).
    std::vector<graph::Vertex> voting_sinks() const;

    /// Full statistics snapshot (matches DelegationOutcome::stats()).
    /// O(n) for max_weight / longest_path; the counters are maintained
    /// incrementally.
    DelegationStats stats() const;

    /// Materialize the current state as per-voter actions (for building a
    /// reference DelegationOutcome in differential tests).
    std::vector<mech::Action> actions() const;

    /// Dirty-region fraction that triggers the full-rebuild fallback
    /// (repairing more than this share of voters costs as much as a
    /// rebuild and the rebuild leaves the arrays cache-friendly).
    double rebuild_fraction = 0.25;

private:
    void init_from_actions();
    void full_rebuild();
    void link_child(graph::Vertex parent, graph::Vertex child);
    void unlink_child(graph::Vertex parent, graph::Vertex child);
    void add_weight_along_chain(graph::Vertex from, std::int64_t delta);
    /// Repair sink/depth across v's subtree; returns voters touched, or
    /// n+1 if the walk exceeded the rebuild threshold and aborted.
    std::size_t repair_subtree(graph::Vertex v);
    bool would_cycle(graph::Vertex v, graph::Vertex target) const;
    PatchResult apply(graph::Vertex v, mech::ActionKind new_kind,
                      graph::Vertex new_target);

    static constexpr graph::Vertex kNil = DelegationOutcome::kNoSink;

    std::vector<mech::ActionKind> kind_;
    std::vector<graph::Vertex> target_;      ///< valid for Delegate
    std::vector<graph::Vertex> first_child_;
    std::vector<graph::Vertex> next_sibling_;
    std::vector<graph::Vertex> prev_sibling_;
    std::vector<graph::Vertex> sink_;
    std::vector<std::size_t> depth_;
    std::vector<std::uint64_t> weight_in_;      ///< per-voter initial weight
    std::vector<std::uint64_t> subtree_weight_; ///< weight_in over the subtree
    std::vector<graph::Vertex> walk_stack_;     ///< repair_subtree scratch
    std::uint64_t cast_weight_ = 0;
    std::size_t voting_sink_count_ = 0;
    std::size_t delegator_count_ = 0;
    std::size_t abstainer_count_ = 0;
};

}  // namespace ld::delegation
