// Voting-power concentration metrics over a realized delegation graph.
// The paper's empirical motivation (Kling et al.'s LiquidFeedback study,
// Schmid & Shestakov's Gitcoin/ICP quantification, the DAO audits in §1)
// measures exactly these quantities; Lemma 5's max-weight condition is a
// worst-case version of them.
//
// All metrics are computed over the *cast* vote weights of the voting
// sinks (abstained/discarded votes excluded).

#pragma once

#include <cstddef>

#include "ld/delegation/delegation_graph.hpp"

namespace ld::delegation {

/// Summary of how concentrated voting power is after delegation.
struct ConcentrationMetrics {
    /// Gini coefficient of the sink-weight distribution, in [0, 1).
    /// 0 = perfectly equal sinks; → 1 = one dictator.
    double gini = 0.0;
    /// Herfindahl–Hirschman index Σ s_i² of weight shares, in (0, 1].
    double hhi = 0.0;
    /// Effective number of sinks 1/HHI ("inverse Simpson"): how many
    /// equal-weight sinks would produce the same concentration.
    double effective_sinks = 0.0;
    /// Share of all cast votes held by the single heaviest sink.
    double top1_share = 0.0;
    /// Share held by the heaviest ⌈10%⌉ of sinks.
    double top_decile_share = 0.0;
    /// Nakamoto coefficient: the minimum number of sinks that jointly
    /// hold a strict majority of the cast votes (0 if no votes cast).
    std::size_t nakamoto = 0;
};

/// Compute all metrics.  Requires a functional outcome; an outcome with no
/// cast votes returns the zero-initialised struct.
ConcentrationMetrics concentration_metrics(const DelegationOutcome& outcome);

}  // namespace ld::delegation
