#include "ld/delegation/incremental.hpp"

#include <algorithm>

#include "support/expect.hpp"

namespace ld::delegation {

using mech::Action;
using mech::ActionKind;
using support::expects;
using support::invariant;

namespace {

/// A terminal voter ends a delegation chain: they vote, abstain, or
/// self-delegate (which counts as voting).
bool is_terminal(ActionKind kind, graph::Vertex v, graph::Vertex target) noexcept {
    return kind != ActionKind::Delegate || target == v;
}

bool casts_vote(ActionKind kind) noexcept { return kind != ActionKind::Abstain; }

}  // namespace

void DynamicResolution::reset(const DelegationOutcome& outcome,
                              std::span<const std::uint64_t> initial_weights) {
    expects(outcome.functional(),
            "DynamicResolution: multi-delegation outcomes are not supported");
    expects(outcome.cycle_losses() == 0,
            "DynamicResolution: cycle-bearing outcomes are not supported");
    const std::size_t n = outcome.voter_count();
    expects(initial_weights.empty() || initial_weights.size() == n,
            "DynamicResolution: initial weights must be empty or one per voter");
    kind_.resize(n);
    target_.resize(n);
    weight_in_.resize(n);
    for (graph::Vertex v = 0; v < n; ++v) {
        const Action& a = outcome.action(v);
        kind_[v] = a.kind;
        target_[v] = a.kind == ActionKind::Delegate ? a.targets.front() : v;
        weight_in_[v] = initial_weights.empty() ? 1 : initial_weights[v];
    }
    init_from_actions();
}

void DynamicResolution::reset_all_vote(std::size_t n,
                                       std::span<const std::uint64_t> initial_weights) {
    expects(initial_weights.empty() || initial_weights.size() == n,
            "DynamicResolution: initial weights must be empty or one per voter");
    kind_.assign(n, ActionKind::Vote);
    target_.resize(n);
    weight_in_.resize(n);
    for (graph::Vertex v = 0; v < n; ++v) {
        target_[v] = v;
        weight_in_[v] = initial_weights.empty() ? 1 : initial_weights[v];
    }
    init_from_actions();
}

void DynamicResolution::init_from_actions() {
    const std::size_t n = kind_.size();
    first_child_.assign(n, kNil);
    next_sibling_.assign(n, kNil);
    prev_sibling_.assign(n, kNil);
    delegator_count_ = 0;
    abstainer_count_ = 0;
    for (graph::Vertex v = 0; v < n; ++v) {
        if (kind_[v] == ActionKind::Delegate) {
            ++delegator_count_;
            if (target_[v] != v) link_child(target_[v], v);
        } else if (kind_[v] == ActionKind::Abstain) {
            ++abstainer_count_;
        }
    }
    sink_.assign(n, kNil);
    depth_.assign(n, 0);
    subtree_weight_.assign(n, 0);
    full_rebuild();
}

void DynamicResolution::full_rebuild() {
    const std::size_t n = kind_.size();
    cast_weight_ = 0;
    voting_sink_count_ = 0;
    auto& order = walk_stack_;
    for (graph::Vertex root = 0; root < n; ++root) {
        if (!is_terminal(kind_[root], root, target_[root])) continue;
        // Pre-order pass assigns sinks/depths; the reversed order then
        // accumulates subtree weights bottom-up.
        order.clear();
        order.push_back(root);
        const graph::Vertex terminal_sink = casts_vote(kind_[root]) ? root : kNil;
        sink_[root] = terminal_sink;
        depth_[root] = 0;
        for (std::size_t head = 0; head < order.size(); ++head) {
            const graph::Vertex u = order[head];
            subtree_weight_[u] = weight_in_[u];
            for (graph::Vertex c = first_child_[u]; c != kNil; c = next_sibling_[c]) {
                if (c == u) continue;  // self-delegation loops are terminals
                sink_[c] = terminal_sink;
                depth_[c] = depth_[u] + 1;
                order.push_back(c);
            }
        }
        for (std::size_t i = order.size(); i-- > 1;) {
            const graph::Vertex u = order[i];
            subtree_weight_[target_[u]] += subtree_weight_[u];
        }
        if (casts_vote(kind_[root]) && subtree_weight_[root] > 0) {
            cast_weight_ += subtree_weight_[root];
            ++voting_sink_count_;
        }
    }
}

void DynamicResolution::link_child(graph::Vertex parent, graph::Vertex child) {
    const graph::Vertex head = first_child_[parent];
    next_sibling_[child] = head;
    prev_sibling_[child] = kNil;
    if (head != kNil) prev_sibling_[head] = child;
    first_child_[parent] = child;
}

void DynamicResolution::unlink_child(graph::Vertex parent, graph::Vertex child) {
    const graph::Vertex prev = prev_sibling_[child];
    const graph::Vertex next = next_sibling_[child];
    if (prev != kNil) {
        next_sibling_[prev] = next;
    } else {
        first_child_[parent] = next;
    }
    if (next != kNil) prev_sibling_[next] = prev;
    next_sibling_[child] = kNil;
    prev_sibling_[child] = kNil;
}

void DynamicResolution::add_weight_along_chain(graph::Vertex from, std::int64_t delta) {
    graph::Vertex u = from;
    while (true) {
        subtree_weight_[u] = static_cast<std::uint64_t>(
            static_cast<std::int64_t>(subtree_weight_[u]) + delta);
        if (is_terminal(kind_[u], u, target_[u])) break;
        u = target_[u];
    }
}

bool DynamicResolution::would_cycle(graph::Vertex v, graph::Vertex target) const {
    graph::Vertex u = target;
    while (true) {
        if (u == v) return true;
        if (is_terminal(kind_[u], u, target_[u])) return false;
        u = target_[u];
    }
}

std::size_t DynamicResolution::repair_subtree(graph::Vertex v) {
    const std::size_t n = kind_.size();
    const std::size_t limit = std::max<std::size_t>(
        1, static_cast<std::size_t>(rebuild_fraction * static_cast<double>(n)));
    graph::Vertex base_sink;
    std::size_t base_depth;
    if (is_terminal(kind_[v], v, target_[v])) {
        base_sink = casts_vote(kind_[v]) ? v : kNil;
        base_depth = 0;
    } else {
        base_sink = sink_[target_[v]];
        base_depth = depth_[target_[v]] + 1;
    }
    sink_[v] = base_sink;
    depth_[v] = base_depth;
    auto& stack = walk_stack_;
    stack.clear();
    stack.push_back(v);
    std::size_t dirty = 0;
    while (!stack.empty()) {
        const graph::Vertex u = stack.back();
        stack.pop_back();
        ++dirty;
        if (dirty > limit) return n + 1;  // abort: caller falls back to rebuild
        for (graph::Vertex c = first_child_[u]; c != kNil; c = next_sibling_[c]) {
            if (c == u) continue;
            sink_[c] = base_sink;
            depth_[c] = depth_[u] + 1;
            stack.push_back(c);
        }
    }
    return dirty;
}

DynamicResolution::PatchResult DynamicResolution::set_vote(graph::Vertex v) {
    expects(v < kind_.size(), "DynamicResolution: voter out of range");
    return apply(v, ActionKind::Vote, v);
}

DynamicResolution::PatchResult DynamicResolution::set_abstain(graph::Vertex v) {
    expects(v < kind_.size(), "DynamicResolution: voter out of range");
    return apply(v, ActionKind::Abstain, v);
}

DynamicResolution::PatchResult DynamicResolution::set_delegate(graph::Vertex v,
                                                               graph::Vertex target) {
    expects(v < kind_.size(), "DynamicResolution: voter out of range");
    expects(target < kind_.size(), "DynamicResolution: target out of range");
    return apply(v, ActionKind::Delegate, target);
}

DynamicResolution::PatchResult DynamicResolution::apply(graph::Vertex v,
                                                        ActionKind new_kind,
                                                        graph::Vertex new_target) {
    PatchResult result;
    const ActionKind old_kind = kind_[v];
    const graph::Vertex old_target = target_[v];
    if (new_kind == old_kind &&
        (new_kind != ActionKind::Delegate || new_target == old_target)) {
        return result;  // idempotent no-op
    }
    const bool new_is_real_delegation =
        new_kind == ActionKind::Delegate && new_target != v;
    if (new_is_real_delegation && would_cycle(v, new_target)) {
        result.cycle_rejected = true;
        return result;
    }

    // Pooled weights move between at most two terminals: the sink that held
    // v's subtree before the patch and the one that holds it after.  The
    // new sink is v's would-be terminal, readable *before* mutating because
    // the cycle check guarantees new_target is outside v's subtree.
    const std::uint64_t sw = subtree_weight_[v];
    const graph::Vertex s_old = sink_[v];
    graph::Vertex s_new;
    if (new_is_real_delegation) {
        s_new = sink_[new_target];
    } else {
        s_new = casts_vote(new_kind) ? v : kNil;
    }
    const auto was_voting_sink = [&](graph::Vertex x) {
        return x != kNil && is_terminal(kind_[x], x, target_[x]) &&
               casts_vote(kind_[x]) && subtree_weight_[x] > 0;
    };
    const bool v_was = was_voting_sink(v);
    const bool s_old_was = s_old != v && was_voting_sink(s_old);
    const bool s_new_was = s_new != v && was_voting_sink(s_new);

    // 1. Detach from the old parent chain.
    const bool old_is_real_delegation =
        old_kind == ActionKind::Delegate && old_target != v;
    if (old_is_real_delegation) {
        unlink_child(old_target, v);
        add_weight_along_chain(old_target, -static_cast<std::int64_t>(sw));
    }

    // 2. Flip the action and the aggregate action counters.
    if (old_kind == ActionKind::Delegate) --delegator_count_;
    if (old_kind == ActionKind::Abstain) --abstainer_count_;
    if (new_kind == ActionKind::Delegate) ++delegator_count_;
    if (new_kind == ActionKind::Abstain) ++abstainer_count_;
    kind_[v] = new_kind;
    target_[v] = new_kind == ActionKind::Delegate ? new_target : v;

    // 3. Attach to the new parent chain.
    if (new_is_real_delegation) {
        link_child(new_target, v);
        add_weight_along_chain(new_target, static_cast<std::int64_t>(sw));
    }

    // 4. Repair sinks/depths across the dirty region (v's subtree), or
    //    rebuild everything once the region is large enough that a rebuild
    //    is no more expensive.
    const std::size_t dirty = repair_subtree(v);
    if (dirty > kind_.size()) {
        full_rebuild();
        result.rebuilt = true;
        result.dirty = kind_.size();
    } else {
        result.dirty = dirty;
        // 5. Cast-weight and voting-sink bookkeeping for the (<= 3)
        //    affected terminals; full_rebuild recomputes these itself.
        if (s_old != kNil) cast_weight_ -= sw;
        if (s_new != kNil) cast_weight_ += sw;
        const auto is_voting_sink_now = [&](graph::Vertex x) {
            return x != kNil && is_terminal(kind_[x], x, target_[x]) &&
                   casts_vote(kind_[x]) && subtree_weight_[x] > 0;
        };
        const auto count_flip = [&](bool was, bool now) {
            if (was && !now) --voting_sink_count_;
            if (!was && now) ++voting_sink_count_;
        };
        count_flip(v_was, is_voting_sink_now(v));
        if (s_old != kNil && s_old != v) count_flip(s_old_was, is_voting_sink_now(s_old));
        if (s_new != kNil && s_new != v && s_new != s_old) {
            count_flip(s_new_was, is_voting_sink_now(s_new));
        }
    }

    // Report pooled-weight deltas for the tally layer.
    if (s_old != s_new) {
        if (s_old != kNil) {
            result.changes[result.change_count++] =
                SinkChange{s_old, pooled_weight(s_old)};
        }
        if (s_new != kNil) {
            result.changes[result.change_count++] =
                SinkChange{s_new, pooled_weight(s_new)};
        }
    }
    result.applied = true;
    return result;
}

std::uint64_t DynamicResolution::pooled_weight(graph::Vertex v) const {
    if (!is_voting(v)) return 0;
    return subtree_weight_[v];
}

bool DynamicResolution::is_voting(graph::Vertex v) const {
    return is_terminal(kind_[v], v, target_[v]) && casts_vote(kind_[v]);
}

std::vector<std::uint64_t> DynamicResolution::weights() const {
    std::vector<std::uint64_t> out(kind_.size(), 0);
    for (graph::Vertex v = 0; v < kind_.size(); ++v) out[v] = pooled_weight(v);
    return out;
}

std::vector<graph::Vertex> DynamicResolution::voting_sinks() const {
    std::vector<graph::Vertex> out;
    for (graph::Vertex v = 0; v < kind_.size(); ++v) {
        if (pooled_weight(v) > 0) out.push_back(v);
    }
    return out;
}

DelegationStats DynamicResolution::stats() const {
    DelegationStats stats;
    stats.delegator_count = delegator_count_;
    stats.abstainer_count = abstainer_count_;
    stats.voting_sink_count = voting_sink_count_;
    stats.cast_weight = cast_weight_;
    for (graph::Vertex v = 0; v < kind_.size(); ++v) {
        stats.longest_path = std::max(stats.longest_path, depth_[v]);
        stats.max_weight = std::max(stats.max_weight, pooled_weight(v));
    }
    return stats;
}

std::vector<Action> DynamicResolution::actions() const {
    std::vector<Action> actions;
    actions.reserve(kind_.size());
    for (graph::Vertex v = 0; v < kind_.size(); ++v) {
        switch (kind_[v]) {
            case ActionKind::Vote: actions.push_back(Action::vote()); break;
            case ActionKind::Abstain: actions.push_back(Action::abstain()); break;
            case ActionKind::Delegate:
                actions.push_back(Action::delegate_to(target_[v]));
                break;
        }
    }
    return actions;
}

}  // namespace ld::delegation
