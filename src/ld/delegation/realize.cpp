#include "ld/delegation/realize.hpp"

namespace ld::delegation {

namespace {

std::vector<mech::Action> sample_actions(const mech::Mechanism& mechanism,
                                         const model::Instance& instance,
                                         rng::Rng& rng) {
    std::vector<mech::Action> actions;
    actions.reserve(instance.voter_count());
    for (graph::Vertex v = 0; v < instance.voter_count(); ++v) {
        actions.push_back(mechanism.act(instance, v, rng));
    }
    return actions;
}

}  // namespace

DelegationOutcome realize(const mech::Mechanism& mechanism,
                          const model::Instance& instance, rng::Rng& rng) {
    return DelegationOutcome(sample_actions(mechanism, instance, rng));
}

DelegationOutcome realize_weighted(const mech::Mechanism& mechanism,
                                   const model::Instance& instance, rng::Rng& rng,
                                   std::span<const std::uint64_t> initial_weights,
                                   CyclePolicy cycle_policy) {
    return DelegationOutcome(sample_actions(mechanism, instance, rng),
                             initial_weights, cycle_policy);
}

void realize_into(DelegationOutcome& outcome,
                  DelegationOutcome::ResolveScratch& scratch,
                  const mech::Mechanism& mechanism, const model::Instance& instance,
                  rng::Rng& rng, std::span<const std::uint64_t> initial_weights,
                  CyclePolicy cycle_policy) {
    auto& actions = outcome.begin_rebuild();
    actions.resize(instance.voter_count());
    for (graph::Vertex v = 0; v < instance.voter_count(); ++v) {
        mechanism.act_into(instance, v, rng, actions[v]);
    }
    outcome.finish_rebuild(initial_weights, cycle_policy, scratch);
}

double expected_direct_voter_count(const mech::Mechanism& mechanism,
                                   const model::Instance& instance) {
    double total = 0.0;
    for (graph::Vertex v = 0; v < instance.voter_count(); ++v) {
        const auto p = mechanism.vote_directly_probability(instance, v);
        if (!p.has_value()) return -1.0;
        total += *p;
    }
    return total;
}

}  // namespace ld::delegation
