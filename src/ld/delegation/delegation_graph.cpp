#include "ld/delegation/delegation_graph.hpp"

#include <algorithm>

#include "support/expect.hpp"

namespace ld::delegation {

using mech::Action;
using mech::ActionKind;
using support::expects;
using support::invariant;

DelegationOutcome::DelegationOutcome(std::vector<Action> actions,
                                     std::span<const std::uint64_t> initial_weights,
                                     CyclePolicy cycle_policy)
    : actions_(std::move(actions)) {
    ResolveScratch scratch;
    validate(initial_weights);
    resolve(initial_weights, cycle_policy, scratch);
}

std::vector<Action>& DelegationOutcome::begin_rebuild() {
    cycle_losses_ = 0;
    functional_ = true;
    sink_.clear();
    weights_.clear();
    voting_sinks_.clear();
    stats_ = DelegationStats{};
    return actions_;
}

void DelegationOutcome::finish_rebuild(std::span<const std::uint64_t> initial_weights,
                                       CyclePolicy cycle_policy,
                                       ResolveScratch& scratch) {
    validate(initial_weights);
    resolve(initial_weights, cycle_policy, scratch);
}

void DelegationOutcome::validate(std::span<const std::uint64_t> initial_weights) const {
    expects(initial_weights.empty() || initial_weights.size() == actions_.size(),
            "DelegationOutcome: initial weights must be empty or one per voter");
    for (const Action& a : actions_) {
        if (a.kind == ActionKind::Delegate) {
            expects(!a.targets.empty(), "DelegationOutcome: delegation without target");
            for (graph::Vertex t : a.targets) {
                expects(t < actions_.size(), "DelegationOutcome: target out of range");
            }
            expects(a.target_weights.empty() ||
                        a.target_weights.size() == a.targets.size(),
                    "DelegationOutcome: target weights must match targets");
            for (double w : a.target_weights) {
                expects(w > 0.0, "DelegationOutcome: target weights must be positive");
            }
        } else {
            expects(a.targets.empty(), "DelegationOutcome: non-delegation with targets");
            expects(a.target_weights.empty(),
                    "DelegationOutcome: non-delegation with target weights");
        }
    }
}

void DelegationOutcome::resolve(std::span<const std::uint64_t> initial_weights,
                                CyclePolicy cycle_policy, ResolveScratch& scratch) {
    const std::size_t n = actions_.size();
    for (const Action& a : actions_) {
        if (a.kind == ActionKind::Delegate) {
            ++stats_.delegator_count;
            if (a.targets.size() > 1) functional_ = false;
        }
        if (a.kind == ActionKind::Abstain) ++stats_.abstainer_count;
    }
    if (!functional_) return;  // multi-target: evaluator resolves by simulation

    constexpr graph::Vertex kUnresolved = kNoSink - 1;
    constexpr graph::Vertex kOnChain = kNoSink - 2;
    sink_.assign(n, kUnresolved);
    auto& depth = scratch.depth;
    auto& lost_to_cycle = scratch.lost_to_cycle;
    auto& chain = scratch.chain;
    depth.assign(n, 0);
    lost_to_cycle.assign(n, 0);
    chain.clear();
    for (graph::Vertex start = 0; start < n; ++start) {
        if (sink_[start] != kUnresolved) continue;
        chain.clear();
        graph::Vertex v = start;
        bool hit_cycle = false;
        // Walk until hitting a terminal or an already-resolved voter.
        while (true) {
            if (sink_[v] == kOnChain) {
                // Returned to a voter on the current chain: a cycle.
                expects(cycle_policy == CyclePolicy::Discard,
                        "DelegationOutcome: delegation cycle detected");
                hit_cycle = true;
                break;
            }
            if (sink_[v] != kUnresolved) break;  // resolved earlier
            const Action& a = actions_[v];
            if (a.kind == ActionKind::Vote) {
                sink_[v] = v;
                break;
            }
            if (a.kind == ActionKind::Abstain) {
                sink_[v] = kNoSink;
                break;
            }
            const graph::Vertex next = a.targets.front();
            if (next == v) {  // self-delegation counts as voting
                sink_[v] = v;
                break;
            }
            sink_[v] = kOnChain;
            chain.push_back(v);
            invariant(chain.size() <= n, "delegation chain longer than voter count");
            v = next;
        }
        // Path-compress the walked chain onto the discovered terminal.
        const bool lost = hit_cycle || (sink_[v] == kNoSink && lost_to_cycle[v]);
        const graph::Vertex terminal = hit_cycle ? kNoSink : sink_[v];
        std::size_t base_depth = hit_cycle ? 0 : depth[v];
        for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
            sink_[*it] = terminal;
            depth[*it] = ++base_depth;
            if (lost) {
                lost_to_cycle[*it] = 1;
                ++cycle_losses_;
            }
        }
    }

    weights_.assign(n, 0);
    for (graph::Vertex v = 0; v < n; ++v) {
        stats_.longest_path = std::max(stats_.longest_path, depth[v]);
        if (sink_[v] != kNoSink) {
            weights_[sink_[v]] += initial_weights.empty() ? 1 : initial_weights[v];
        }
    }
    for (graph::Vertex v = 0; v < n; ++v) {
        if (weights_[v] > 0) {
            invariant(actions_[v].kind == ActionKind::Vote ||
                          (actions_[v].kind == ActionKind::Delegate &&
                           actions_[v].targets.front() == v),
                      "weight pooled at a non-voting voter");
            voting_sinks_.push_back(v);
            stats_.max_weight = std::max(stats_.max_weight, weights_[v]);
            stats_.cast_weight += weights_[v];
        }
    }
    stats_.voting_sink_count = voting_sinks_.size();
}

graph::Vertex DelegationOutcome::sink_of(graph::Vertex v) const {
    expects(functional_, "sink_of: outcome is not functional (multi-delegation)");
    expects(v < actions_.size(), "sink_of: voter out of range");
    return sink_[v];
}

const std::vector<std::uint64_t>& DelegationOutcome::weights() const {
    expects(functional_, "weights: outcome is not functional (multi-delegation)");
    return weights_;
}

const std::vector<graph::Vertex>& DelegationOutcome::voting_sinks() const {
    expects(functional_, "voting_sinks: outcome is not functional (multi-delegation)");
    return voting_sinks_;
}

graph::Digraph DelegationOutcome::as_digraph() const {
    std::vector<graph::Arc> arcs;
    for (graph::Vertex v = 0; v < actions_.size(); ++v) {
        for (graph::Vertex t : actions_[v].targets) {
            arcs.push_back(graph::Arc{v, t});
        }
    }
    return graph::Digraph(actions_.size(), std::move(arcs));
}

}  // namespace ld::delegation
