#include "ld/serve/protocol.hpp"

#include "prob/convolve.hpp"
#include "support/build_info.hpp"
#include "support/cpu_features.hpp"

namespace ld::serve {

std::string_view error_code_name(ErrorCode code) noexcept {
    switch (code) {
        case ErrorCode::BadRequest: return "bad_request";
        case ErrorCode::UnknownMethod: return "unknown_method";
        case ErrorCode::Overloaded: return "overloaded";
        case ErrorCode::DeadlineExceeded: return "deadline_exceeded";
        case ErrorCode::NotFound: return "not_found";
        case ErrorCode::Conflict: return "conflict";
        case ErrorCode::ShuttingDown: return "shutting_down";
        case ErrorCode::Internal: return "internal";
    }
    return "internal";
}

Request parse_request(std::string_view line,
                      std::chrono::steady_clock::time_point now) {
    json::Value doc;
    try {
        doc = json::parse(line);
    } catch (const json::Error& e) {
        throw ProtocolError(ErrorCode::BadRequest, std::string("bad JSON: ") + e.what());
    }
    if (!doc.is_object()) {
        throw ProtocolError(ErrorCode::BadRequest, "request must be a JSON object");
    }

    Request request;
    request.admitted_at = now;
    if (const json::Value* id = doc.find("id")) {
        if (!id->is_string() && !id->is_number() && !id->is_null()) {
            throw ProtocolError(ErrorCode::BadRequest, "id must be a string or number");
        }
        request.id = *id;
    }
    const json::Value* method = doc.find("method");
    if (!method || !method->is_string() || method->as_string().empty()) {
        throw ProtocolError(ErrorCode::BadRequest, "missing method");
    }
    request.method = method->as_string();
    if (const json::Value* params = doc.find("params")) {
        if (!params->is_object() && !params->is_null()) {
            throw ProtocolError(ErrorCode::BadRequest, "params must be an object");
        }
        request.params = *params;
    }
    if (const json::Value* deadline = doc.find("deadline_ms")) {
        if (!deadline->is_number() || deadline->as_number() < 0) {
            throw ProtocolError(ErrorCode::BadRequest,
                                "deadline_ms must be a non-negative number");
        }
        request.deadline =
            now + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                      std::chrono::duration<double, std::milli>(deadline->as_number()));
    }
    return request;
}

json::Value id_of_line(std::string_view line) noexcept {
    try {
        const json::Value doc = json::parse(line);
        if (doc.is_object()) {
            if (const json::Value* id = doc.find("id")) return *id;
        }
    } catch (...) {
    }
    return json::Value();
}

std::string render_result(const json::Value& id, json::Object result) {
    json::Object response;
    response.emplace("id", id);
    response.emplace("ok", json::Value(true));
    response.emplace("result", json::Value(std::move(result)));
    return json::dump(json::Value(std::move(response)));
}

std::string render_error(const json::Value& id, ErrorCode code,
                         const std::string& message) {
    json::Object error;
    error.emplace("code", json::Value(std::string(error_code_name(code))));
    error.emplace("message", json::Value(message));
    json::Object response;
    response.emplace("id", id);
    response.emplace("ok", json::Value(false));
    response.emplace("error", json::Value(std::move(error)));
    return json::dump(json::Value(std::move(response)));
}

std::string render_handshake() {
    json::Object handshake;
    handshake.emplace("schema", json::Value(std::string(kSchema)));
    handshake.emplace("server", json::Value(std::string("liquidd")));
    handshake.emplace("build", support::build_info_json());
    // Active tally-kernel tier, so recorded eval results are attributable
    // to a lane width (bit-identical across tiers, but attribution is
    // part of the reproducibility story).
    handshake.emplace(
        "simd", json::Value(std::string(support::simd_tier_name(prob::kernel_tier()))));
    json::Array methods;
    for (const char* name :
         {"eval", "instance.load", "instance.info", "instance.patch",
          "instance.state", "metrics", "health", "shutdown"}) {
        methods.emplace_back(std::string(name));
    }
    handshake.emplace("methods", json::Value(std::move(methods)));
    return json::dump(json::Value(std::move(handshake)));
}

}  // namespace ld::serve
