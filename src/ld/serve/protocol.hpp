// The `liquidd.rpc.v1` wire protocol: newline-delimited JSON over a
// Unix-domain or TCP-loopback stream.  One request per line, one response
// per line, matched by the client-chosen `id` (responses may arrive out
// of request order once the micro-batcher reorders evals).
//
//   request:  {"id": <string|number>, "method": "<name>",
//              "params": {...}, "deadline_ms": <number, optional>}
//   success:  {"id": ..., "ok": true, "result": {...}}
//   failure:  {"id": ..., "ok": false,
//              "error": {"code": "<ErrorCode>", "message": "..."}}
//
// On connect the server speaks first with a handshake line:
//   {"schema": "liquidd.rpc.v1", "server": "liquidd",
//    "build": {...}, "methods": [...]}
//
// Protocol reference with per-method params/results: docs/SERVING.md.

#pragma once

#include <chrono>
#include <optional>
#include <string>
#include <string_view>

#include "support/json.hpp"

namespace ld::serve {

namespace json = support::json;

inline constexpr std::string_view kSchema = "liquidd.rpc.v1";

/// Machine-readable failure classes.  Stable strings — clients switch on
/// them (loadgen counts per-code; CI asserts no protocol errors).
enum class ErrorCode {
    BadRequest,       ///< unparseable line / missing or ill-typed fields
    UnknownMethod,    ///< method not in the handshake list
    Overloaded,       ///< admission queue full — back off and retry
    DeadlineExceeded, ///< request expired before execution finished
    NotFound,         ///< instance fingerprint not in the cache
    Conflict,         ///< instance.patch expect_epoch mismatch — refetch state
    ShuttingDown,     ///< server is draining; no new work accepted
    Internal,         ///< evaluation threw (bug or bad spec params)
};

std::string_view error_code_name(ErrorCode code) noexcept;

/// Thrown by parse/validate helpers; carries the response error code.
class ProtocolError : public std::runtime_error {
public:
    ProtocolError(ErrorCode code, const std::string& what)
        : std::runtime_error(what), code_(code) {}
    ErrorCode code() const noexcept { return code_; }

private:
    ErrorCode code_;
};

/// One parsed request, stamped with its admission time so deadline
/// checks need no further clock reads at parse sites.
struct Request {
    json::Value id;      ///< echoed verbatim (null when the client sent none)
    std::string method;
    json::Value params;  ///< object, or null when absent
    std::optional<std::chrono::steady_clock::time_point> deadline;
    std::chrono::steady_clock::time_point admitted_at;

    bool expired(std::chrono::steady_clock::time_point now) const noexcept {
        return deadline.has_value() && now > *deadline;
    }
};

/// Parse one request line.  Throws ProtocolError(BadRequest) on anything
/// malformed; the caller still gets the id (best effort) for the error
/// response via `id_of_line`.
Request parse_request(std::string_view line, std::chrono::steady_clock::time_point now);

/// Best-effort id extraction from a possibly malformed request line, so
/// error responses stay correlated when parse_request throws.
json::Value id_of_line(std::string_view line) noexcept;

/// Render a success response line (no trailing newline).
std::string render_result(const json::Value& id, json::Object result);

/// Render a failure response line (no trailing newline).
std::string render_error(const json::Value& id, ErrorCode code,
                         const std::string& message);

/// The server's opening line: schema, build info, method list.
std::string render_handshake();

}  // namespace ld::serve
