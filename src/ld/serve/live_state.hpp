// Live delegation sessions for the serve layer — the server side of the
// `instance.patch` hot path (docs/CHURN.md, docs/SERVING.md).
//
// A LiveState is the mutable counterpart of a cached instance: the
// delegation profile of a *running* election, born at the all-vote
// profile and advanced one `instance.patch` request at a time.  It pairs
// the incremental churn engine's two halves —
//
//  * a delegation::DynamicResolution holding sinks / pooled weights /
//    depths under single-voter mutations, and
//  * an election::LiveTally holding the segmented product trees that
//    re-tally P^M / P^D in O(log n) per changed sink —
//
// so a patch-plus-re-eval costs O(Δ · log n) instead of the full
// instance.load + eval rebuild.
//
// Epoch semantics: every *successful* patch request advances the epoch
// by exactly one (even when some of its ops were rejected or were
// no-ops).  A client that pipelines patches through the shard router can
// pass `expect_epoch` to detect reordering or a failed-over backend that
// missed a broadcast: a mismatch is a `conflict` error and the state is
// untouched — refetch `instance.state` and resync.
//
// Ops are *absolute* assignments (set this voter's action / competency),
// so replaying a patch is idempotent on the resolution state; only the
// epoch distinguishes a replay.  The sole per-op failure is a delegation
// that would close a cycle: it is reported per-op (`applied: false`)
// inside an ok response, because a live platform rejects that one edge,
// not the whole submission batch.

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "ld/delegation/incremental.hpp"
#include "ld/election/tally_delta.hpp"
#include "ld/serve/instance_cache.hpp"
#include "ld/serve/protocol.hpp"

namespace ld::serve {

class LiveState {
public:
    /// Born at the all-vote profile of `base` with its competencies, and
    /// product trees clipped at `tally_epsilon` (certified; 0 = exact).
    LiveState(std::shared_ptr<const CachedInstance> base, double tally_epsilon);

    /// Apply one patch request: `ops` array, optional `expect_epoch`.
    /// Returns the result object; throws ProtocolError on a malformed
    /// request or an epoch conflict (state untouched in both cases).
    json::Object apply_patch(const json::Value& params);

    /// Read-only snapshot: epoch, live tally, delegation-shape stats.
    json::Object state() const;

    const CachedInstance& base() const noexcept { return *base_; }

private:
    json::Object summary_locked() const;

    std::shared_ptr<const CachedInstance> base_;
    double tally_epsilon_ = 0.0;
    mutable std::mutex mutex_;
    std::uint64_t epoch_ = 0;
    delegation::DynamicResolution resolution_;
    election::LiveTally tally_;
};

/// Thread-safe fingerprint → live session map.  Sessions are created on
/// first touch (patch or state query) and share the lifetime of the
/// table; dropping the table ends every session.
class LiveTable {
public:
    /// Find or create the live session for `base`.  `tally_epsilon`
    /// applies only at creation (an existing session keeps its trees).
    std::shared_ptr<LiveState> open(std::shared_ptr<const CachedInstance> base,
                                    double tally_epsilon);

    /// Lookup only; nullptr when no session exists.
    std::shared_ptr<LiveState> find(const std::string& fingerprint) const;

    std::size_t size() const;
    void clear();

private:
    mutable std::mutex mutex_;
    std::map<std::string, std::shared_ptr<LiveState>> sessions_;
};

}  // namespace ld::serve
