#include "ld/serve/live_state.hpp"

#include <span>
#include <vector>

#include "support/metrics.hpp"

namespace ld::serve {

namespace {

// Param access helpers (mirrors router.cpp: every mismatch is a
// BadRequest naming the key).

[[noreturn]] void bad_param(const std::string& key, const std::string& what) {
    throw ProtocolError(ErrorCode::BadRequest, "params." + key + ": " + what);
}

const json::Value& require(const json::Value& params, const std::string& key) {
    if (!params.is_object()) {
        throw ProtocolError(ErrorCode::BadRequest, "params object required");
    }
    const json::Value* value = params.find(key);
    if (!value) bad_param(key, "missing");
    return *value;
}

std::string require_string(const json::Value& params, const std::string& key) {
    const json::Value& value = require(params, key);
    if (!value.is_string() || value.as_string().empty()) {
        bad_param(key, "expected a non-empty string");
    }
    return value.as_string();
}

double require_number(const json::Value& params, const std::string& key) {
    const json::Value& value = require(params, key);
    if (!value.is_number()) bad_param(key, "expected a number");
    return value.as_number();
}

std::size_t require_count(const json::Value& params, const std::string& key) {
    const double d = require_number(params, key);
    if (d < 0 || d != static_cast<double>(static_cast<std::size_t>(d))) {
        bad_param(key, "expected a non-negative integer");
    }
    return static_cast<std::size_t>(d);
}

/// One validated op, parsed before any state is touched so a malformed
/// ops array can never leave a patch half-applied.
struct ParsedOp {
    enum class Kind { Delegate, Vote, Abstain, Competency };
    Kind kind = Kind::Vote;
    graph::Vertex voter = 0;
    graph::Vertex to = 0;  ///< Delegate only
    double p = 0.0;        ///< Competency only
};

std::vector<ParsedOp> parse_ops(const json::Value& params, std::size_t n) {
    const json::Value& ops_value = require(params, "ops");
    if (!ops_value.is_array()) bad_param("ops", "expected an array");
    const auto& array = ops_value.as_array();
    if (array.empty()) bad_param("ops", "expected at least one op");

    std::vector<ParsedOp> ops;
    ops.reserve(array.size());
    for (const json::Value& entry : array) {
        if (!entry.is_object()) bad_param("ops", "each op must be an object");
        ParsedOp op;
        const std::string kind = require_string(entry, "op");
        op.voter = require_count(entry, "voter");
        if (op.voter >= n) bad_param("voter", "out of range");
        if (kind == "delegate") {
            op.kind = ParsedOp::Kind::Delegate;
            op.to = require_count(entry, "to");
            if (op.to >= n) bad_param("to", "out of range");
        } else if (kind == "vote") {
            op.kind = ParsedOp::Kind::Vote;
        } else if (kind == "abstain") {
            op.kind = ParsedOp::Kind::Abstain;
        } else if (kind == "competency") {
            op.kind = ParsedOp::Kind::Competency;
            op.p = require_number(entry, "p");
            if (op.p < 0.0 || op.p > 1.0) bad_param("p", "must be in [0, 1]");
        } else {
            bad_param("op", "expected delegate|vote|abstain|competency, got '" +
                                kind + "'");
        }
        ops.push_back(op);
    }
    return ops;
}

}  // namespace

LiveState::LiveState(std::shared_ptr<const CachedInstance> base,
                     double tally_epsilon)
    : base_(std::move(base)), tally_epsilon_(tally_epsilon) {
    resolution_.reset_all_vote(base_->instance.voter_count());
    tally_.reset(base_->instance.competencies().values(), resolution_,
                 tally_epsilon_);
}

json::Object LiveState::summary_locked() const {
    json::Object result;
    result.emplace("instance", json::Value(base_->fingerprint));
    result.emplace("epoch", json::Value(static_cast<double>(epoch_)));
    result.emplace("pm", json::Value(tally_.correct_probability()));
    result.emplace("pd", json::Value(tally_.direct_probability()));
    result.emplace("gain", json::Value(tally_.gain()));
    result.emplace("pm_error_bound", json::Value(tally_.error_bound()));
    result.emplace("pd_error_bound", json::Value(tally_.direct_error_bound()));
    result.emplace("voting_sinks",
                   json::Value(static_cast<double>(resolution_.voting_sink_count())));
    result.emplace("cast_weight",
                   json::Value(static_cast<double>(resolution_.cast_weight())));
    return result;
}

json::Object LiveState::apply_patch(const json::Value& params) {
    auto& registry = support::MetricsRegistry::global();
    registry.counter("patch.requests").add(1);

    std::lock_guard<std::mutex> lock(mutex_);
    // Validate everything — epoch, then the full ops array — before any
    // mutation: a failed patch leaves the state byte-identical.
    if (params.is_object() && params.find("expect_epoch")) {
        const std::uint64_t expected = require_count(params, "expect_epoch");
        if (expected != epoch_) {
            throw ProtocolError(ErrorCode::Conflict,
                                "expect_epoch " + std::to_string(expected) +
                                    " does not match live epoch " +
                                    std::to_string(epoch_) +
                                    " (refetch instance.state)");
        }
    }
    const auto ops = parse_ops(params, resolution_.voter_count());

    json::Array op_results;
    std::size_t applied = 0;
    std::size_t rejected = 0;
    for (const ParsedOp& op : ops) {
        json::Object entry;
        if (op.kind == ParsedOp::Kind::Competency) {
            tally_.set_competency(resolution_, op.voter, op.p);
            entry.emplace("applied", json::Value(true));
            ++applied;
        } else {
            delegation::DynamicResolution::PatchResult patch;
            switch (op.kind) {
                case ParsedOp::Kind::Delegate:
                    patch = resolution_.set_delegate(op.voter, op.to);
                    break;
                case ParsedOp::Kind::Vote:
                    patch = resolution_.set_vote(op.voter);
                    break;
                default:
                    patch = resolution_.set_abstain(op.voter);
                    break;
            }
            if (patch.cycle_rejected) {
                // A live platform rejects the one offending edge, not the
                // whole submission — per-op failure inside an ok response.
                registry.counter("patch.rejected").add(1);
                entry.emplace("applied", json::Value(false));
                entry.emplace("reason", json::Value(std::string("cycle")));
                ++rejected;
            } else {
                tally_.apply_sink_changes(
                    {patch.changes.data(), patch.change_count});
                registry.counter("patch.tally_delta").add(patch.change_count);
                registry.histogram("patch.dirty")
                    .record(static_cast<double>(patch.dirty));
                if (patch.rebuilt) {
                    registry.counter("patch.resolution_rebuilds").add(1);
                }
                entry.emplace("applied", json::Value(true));
                ++applied;
            }
        }
        op_results.emplace_back(std::move(entry));
    }
    registry.counter("patch.ops").add(ops.size());

    // Every successful patch request advances the epoch by exactly one,
    // rejected or no-op ops included: the epoch numbers *requests*, which
    // is what the shard router's broadcast coherence needs.
    ++epoch_;
    registry.gauge("patch.epoch").set(static_cast<std::int64_t>(epoch_));

    json::Object result = summary_locked();
    result.emplace("applied", json::Value(static_cast<double>(applied)));
    result.emplace("rejected", json::Value(static_cast<double>(rejected)));
    result.emplace("results", json::Value(std::move(op_results)));
    return result;
}

json::Object LiveState::state() const {
    std::lock_guard<std::mutex> lock(mutex_);
    json::Object result = summary_locked();
    const auto stats = resolution_.stats();
    result.emplace("delegators",
                   json::Value(static_cast<double>(stats.delegator_count)));
    result.emplace("abstainers",
                   json::Value(static_cast<double>(stats.abstainer_count)));
    result.emplace("max_weight",
                   json::Value(static_cast<double>(stats.max_weight)));
    result.emplace("longest_path",
                   json::Value(static_cast<double>(stats.longest_path)));
    return result;
}

std::shared_ptr<LiveState> LiveTable::open(
    std::shared_ptr<const CachedInstance> base, double tally_epsilon) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto& slot = sessions_[base->fingerprint];
    if (!slot) slot = std::make_shared<LiveState>(std::move(base), tally_epsilon);
    return slot;
}

std::shared_ptr<LiveState> LiveTable::find(const std::string& fingerprint) const {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = sessions_.find(fingerprint);
    return it == sessions_.end() ? nullptr : it->second;
}

std::size_t LiveTable::size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return sessions_.size();
}

void LiveTable::clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    sessions_.clear();
}

}  // namespace ld::serve
