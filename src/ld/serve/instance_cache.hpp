// Content-addressed cache of realized instances for the serve layer.
//
// An instance is fully determined by (graph spec, competency spec, n,
// alpha, seed) — realization is deterministic — so that tuple's
// fingerprint is the cache key AND the client-visible handle:
// `instance.load` returns it, later `eval` calls pass it back, and two
// clients loading the same tuple share one realized instance (graph,
// competency vector, and the approval CSR the mechanisms' hot path
// reads).  This is what lets thousands of small dependent queries skip
// the rebuild that dominates one-shot CLI runs.
//
// Entries are shared_ptr-held: a drain or explicit eviction can drop the
// cache while an in-flight eval keeps its instance alive.

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "ld/model/instance.hpp"

namespace ld::serve {

/// The (spec tuple, realized instance) pair a fingerprint resolves to.
struct CachedInstance {
    std::string fingerprint;     ///< hex key, e.g. "0x9a4b..."
    std::string graph_spec;
    std::string competency_spec;
    std::size_t n = 0;
    double alpha = 0.0;
    std::uint64_t seed = 0;
    model::Instance instance;

    CachedInstance(std::string fp, std::string graph, std::string competencies,
                   std::size_t n_, double alpha_, std::uint64_t seed_,
                   model::Instance realized)
        : fingerprint(std::move(fp)),
          graph_spec(std::move(graph)),
          competency_spec(std::move(competencies)),
          n(n_),
          alpha(alpha_),
          seed(seed_),
          instance(std::move(realized)) {}
};

/// Thread-safe fingerprint → instance map.
class InstanceCache {
public:
    /// Stable fingerprint of the realization tuple (FNV-1a over a
    /// canonical rendering; the same value across processes and runs).
    static std::string fingerprint(const std::string& graph_spec,
                                   const std::string& competency_spec, std::size_t n,
                                   double alpha, std::uint64_t seed);

    /// Look up the tuple; realize and insert on miss.  `was_hit` (when
    /// non-null) reports whether the instance was already cached.
    /// Throws cli::SpecError on a bad spec.
    std::shared_ptr<const CachedInstance> load(const std::string& graph_spec,
                                               const std::string& competency_spec,
                                               std::size_t n, double alpha,
                                               std::uint64_t seed,
                                               bool* was_hit = nullptr);

    /// Fingerprint lookup only; nullptr when absent.
    std::shared_ptr<const CachedInstance> find(const std::string& fingerprint) const;

    std::size_t size() const;
    void clear();

private:
    mutable std::mutex mutex_;
    std::map<std::string, std::shared_ptr<const CachedInstance>> entries_;
};

}  // namespace ld::serve
