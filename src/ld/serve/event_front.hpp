// The client-facing half of the serve layer, rebuilt on the epoll
// EventLoop: listeners, nonblocking connections, newline framing, write
// buffering, write-stall policing, and drain choreography — everything
// transport, nothing protocol.  `Server` (local evaluation) and
// `ShardRouter` (request forwarding) both sit behind one EventFront and
// differ only in the line handler they install.
//
// Threading: ONE loop thread owns every socket.  Reads, line framing,
// accepts, and flushes happen there; the only cross-thread operations
// are Conn::send (append to the connection's out-buffer, then hop to
// the loop to flush) and the drain-sequence calls (stop_accepting,
// settle_inputs, flush_all, close_all, shutdown), which post work and
// wait.  This replaces the PR-4 thread-per-connection model: a held
// connection now costs one fd and ~one buffered line, not a thread, so
// thousands of mostly-idle clients are cheap.
//
// Write-stall policy (unchanged semantics from the reader-thread
// model): a peer whose out-buffer accepts nothing for `write_timeout`
// has stopped reading and is dropped, so it can never head-of-line
// block a drain or grow the buffer without bound.
//
// Hangup taxonomy: a read of 0 / EPOLLRDHUP is a *half-close* — the
// peer is done sending but may still be reading, so in-flight responses
// keep flushing and the connection closes only once the last one is
// out.  EPOLLHUP/EPOLLERR is a *full* hangup (close or reset): pending
// input is salvaged, pending output is undeliverable, drop immediately.

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>

#include "support/event_loop.hpp"
#include "support/net.hpp"

namespace ld::serve {

class EventFront;

/// One client connection, owned by the front's event loop.  Handlers
/// and dispatcher threads hold it shared: the socket closes with the
/// last reference's front-side teardown, and sends to a dropped peer
/// degrade to no-ops instead of racing a close.
class Conn : public std::enable_shared_from_this<Conn> {
public:
    /// Buffered line send (newline appended).  Thread-safe; never
    /// blocks the caller — bytes land in the out-buffer and the loop
    /// thread flushes them as the socket drains.
    void send(const std::string& line) noexcept;

    bool dead() const noexcept { return dead_.load(std::memory_order_relaxed); }

    /// In-flight accounting for admitted requests: a half-closed
    /// connection is torn down only after its last response flushed.
    void add_inflight() noexcept {
        inflight_.fetch_add(1, std::memory_order_relaxed);
    }
    void finish_inflight() noexcept;

private:
    friend class EventFront;
    Conn(std::shared_ptr<support::net::EventLoop> loop, EventFront* front,
         support::net::Socket socket);

    void flush();        ///< loop thread: drain out-buffer into the socket
    void maybe_close();  ///< loop thread: close once read-closed + quiet

    std::shared_ptr<support::net::EventLoop> loop_;
    EventFront* front_;

    // Loop-thread-only state.
    support::net::Socket socket_;
    std::string in_buffer_;   ///< at most one partial line between wakeups
    bool read_closed_ = false;
    bool want_write_ = false;
    std::chrono::steady_clock::time_point stall_since_{};

    std::mutex out_mutex_;
    std::string out_buffer_;      ///< guarded by out_mutex_
    std::size_t out_offset_ = 0;  ///< flushed prefix (guarded by out_mutex_)

    std::atomic<bool> flush_queued_{false};
    std::atomic<bool> dead_{false};
    std::atomic<int> inflight_{0};
};

struct FrontConfig {
    /// Unix-domain socket path ("" = no Unix listener).
    std::string unix_socket;
    /// TCP loopback port; 0 = ephemeral.  nullopt = no TCP listener.
    std::optional<std::uint16_t> tcp_port;
    /// Drop a peer whose writes make no progress this long (0 = never).
    std::chrono::milliseconds write_timeout{5'000};
    /// Loop tick period: write-stall sweeps + listener re-arm cadence.
    std::chrono::milliseconds tick{200};
    /// A readable fd (e.g. support::SignalDrain::wake_fd()) watched by
    /// the loop; readiness fires the on_drain_signal callback once.
    int signal_wake_fd = -1;
    /// Server-first line sent on accept ("" = none).
    std::string handshake;
    /// Live-connection gauge to mirror (ServeStatus::connections).
    std::atomic<std::uint64_t>* connections_gauge = nullptr;
};

class EventFront {
public:
    using LineHandler =
        std::function<void(const std::shared_ptr<Conn>&, const std::string&)>;

    /// `on_line` runs on the loop thread for every complete request
    /// line — it must either answer inline (cheap methods) or enqueue
    /// and return (evals).  `on_drain_signal` fires once when
    /// config.signal_wake_fd becomes readable.
    EventFront(FrontConfig config, LineHandler on_line,
               std::function<void()> on_drain_signal = {});

    /// Stops the loop and closes everything still open.
    ~EventFront();

    EventFront(const EventFront&) = delete;
    EventFront& operator=(const EventFront&) = delete;

    /// Bind listeners and launch the loop thread.  On return the
    /// listeners are accepting (this is what --ready-file reports).
    void start();

    std::uint16_t tcp_port() const noexcept { return tcp_port_; }
    std::size_t connection_count() const noexcept {
        return conn_count_.load(std::memory_order_relaxed);
    }
    /// Descriptors registered with the loop (listeners + connections +
    /// wake/signal fds) — exported as the `loop.fds` gauge.
    std::size_t loop_fd_count() const noexcept { return loop_->fd_count(); }

    // Drain sequence (called in this order by Server/ShardRouter):

    /// Close the listeners; connects from here on are refused.
    void stop_accepting();

    /// Double barrier: returns only after the loop has completed one
    /// full poll-dispatch cycle and the tasks queued behind it — i.e.
    /// every request line that was readable when the drain began has
    /// been handed to on_line.  Callers loop {settle; re-check queues}.
    void settle_inputs();

    /// Wait (bounded) for every connection's out-buffer to flush.
    bool flush_all(std::chrono::milliseconds timeout);

    /// Tear down every connection (clients see EOF).
    void close_all();

    /// Stop the loop and join its thread.  Idempotent.
    void shutdown();

private:
    friend class Conn;

    void run_loop();
    void handle_accept(support::net::Listener& listener);
    void on_conn_event(const std::shared_ptr<Conn>& conn, std::uint32_t events);
    void read_pass(const std::shared_ptr<Conn>& conn);
    void close_conn(const std::shared_ptr<Conn>& conn);
    void on_tick();
    void barrier();  ///< post a no-op and wait for it
    /// Run `fn` on the loop thread and wait; runs inline when the loop
    /// is not running (or the caller *is* the loop thread).
    void post_and_wait(const std::function<void()>& fn);

    FrontConfig config_;
    LineHandler on_line_;
    std::function<void()> on_drain_signal_;

    std::shared_ptr<support::net::EventLoop> loop_;
    std::optional<support::net::Listener> unix_listener_;
    std::optional<support::net::Listener> tcp_listener_;
    std::uint16_t tcp_port_ = 0;
    std::thread loop_thread_;

    std::unordered_map<int, std::shared_ptr<Conn>> conns_;  ///< loop thread only
    std::atomic<std::size_t> conn_count_{0};
    std::atomic<bool> accepting_{true};
    bool listeners_paused_ = false;  ///< fd exhaustion backoff (loop thread)
    bool started_ = false;
    bool shut_down_ = false;
};

/// Signal "listeners are accepting" to process supervisors: write
/// "ready\n" to `ready_fd` (then close it) and/or to `ready_file`.
/// The file fd is opened O_RDWR (so a FIFO never blocks the server)
/// and returned still open — keeping it open lets a late FIFO reader
/// still collect the byte; the caller closes it at drain.  Returns -1
/// when no ready_file was given.  Throws NetError when a requested
/// signal cannot be delivered.
int signal_ready(const std::string& ready_file, int ready_fd);

}  // namespace ld::serve
