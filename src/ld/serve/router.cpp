#include "ld/serve/router.hpp"

#include <sstream>

#include "ld/cli/specs.hpp"
#include "ld/delegation/delegation_graph.hpp"
#include "ld/election/evaluator.hpp"
#include "stats/confidence_sequence.hpp"
#include "support/expect.hpp"
#include "support/metrics.hpp"
#include "support/stopwatch.hpp"
#include "support/thread_pool.hpp"

namespace ld::serve {

namespace {

// Param access helpers: every mismatch is a BadRequest naming the key.

[[noreturn]] void bad_param(const std::string& key, const std::string& what) {
    throw ProtocolError(ErrorCode::BadRequest, "params." + key + ": " + what);
}

const json::Value& require(const json::Value& params, const std::string& key) {
    if (!params.is_object()) {
        throw ProtocolError(ErrorCode::BadRequest, "params object required");
    }
    const json::Value* value = params.find(key);
    if (!value) bad_param(key, "missing");
    return *value;
}

std::string require_string(const json::Value& params, const std::string& key) {
    const json::Value& value = require(params, key);
    if (!value.is_string() || value.as_string().empty()) {
        bad_param(key, "expected a non-empty string");
    }
    return value.as_string();
}

double require_number(const json::Value& params, const std::string& key) {
    const json::Value& value = require(params, key);
    if (!value.is_number()) bad_param(key, "expected a number");
    return value.as_number();
}

std::size_t require_count(const json::Value& params, const std::string& key) {
    const double d = require_number(params, key);
    if (d < 0 || d != static_cast<double>(static_cast<std::size_t>(d))) {
        bad_param(key, "expected a non-negative integer");
    }
    return static_cast<std::size_t>(d);
}

std::size_t optional_count(const json::Value& params, const std::string& key,
                           std::size_t fallback) {
    if (!params.is_object() || !params.find(key)) return fallback;
    return require_count(params, key);
}

double optional_number(const json::Value& params, const std::string& key,
                       double fallback) {
    if (!params.is_object() || !params.find(key)) return fallback;
    return require_number(params, key);
}

std::string optional_string(const json::Value& params, const std::string& key,
                            const std::string& fallback) {
    if (!params.is_object() || !params.find(key)) return fallback;
    return require_string(params, key);
}

bool optional_bool(const json::Value& params, const std::string& key, bool fallback) {
    if (!params.is_object() || !params.find(key)) return fallback;
    const json::Value& value = params.at(key);
    if (!value.is_bool()) bad_param(key, "expected a bool");
    return value.as_bool();
}

json::Object report_to_json(const election::GainReport& report) {
    json::Object result;
    result.emplace("pd", json::Value(report.pd));
    result.emplace("pm", json::Value(report.pm.value));
    result.emplace("pm_stderr", json::Value(report.pm.std_error));
    result.emplace("gain", json::Value(report.gain));
    result.emplace("gain_ci_lo", json::Value(report.gain_ci.lo));
    result.emplace("gain_ci_hi", json::Value(report.gain_ci.hi));
    result.emplace("mean_delegators", json::Value(report.mean_delegators));
    result.emplace("mean_sinks", json::Value(report.mean_sinks));
    result.emplace("mean_max_weight", json::Value(report.mean_max_weight));
    result.emplace("mean_longest_path", json::Value(report.mean_longest_path));
    result.emplace("replications",
                   json::Value(static_cast<double>(report.pm.replications)));
    if (report.pm.certified && report.certified_gain) {
        const auto& cert = *report.pm.certified;
        result.emplace("cert_gain_lo", json::Value(report.certified_gain->lo));
        result.emplace("cert_gain_hi", json::Value(report.certified_gain->hi));
        result.emplace("cert_pm_lo", json::Value(cert.lo));
        result.emplace("cert_pm_hi", json::Value(cert.hi));
        result.emplace("cert_delta", json::Value(cert.delta));
        result.emplace("cert_stop",
                       json::Value(std::string(stats::cert_stop_name(cert.stop))));
        result.emplace("cert_looks", json::Value(static_cast<double>(cert.looks)));
    }
    return result;
}

}  // namespace

Router::Router(RouterConfig config, InstanceCache& cache, ServeStatus* status)
    : config_(config), cache_(cache), status_(status) {}

Router::Outcome Router::execute(const Request& request) {
    auto& registry = support::MetricsRegistry::global();
    registry.counter("serve.requests").add(1);
    const support::Stopwatch clock;

    Outcome outcome;
    try {
        json::Object result;
        if (request.method == "eval") {
            result = do_eval(request.params);
        } else if (request.method == "instance.load") {
            result = do_instance_load(request.params);
        } else if (request.method == "instance.info") {
            result = do_instance_info(request.params);
        } else if (request.method == "instance.patch") {
            result = do_instance_patch(request.params);
        } else if (request.method == "instance.state") {
            result = do_instance_state(request.params);
        } else if (request.method == "metrics") {
            result = do_metrics();
        } else if (request.method == "health") {
            result = do_health();
        } else if (request.method == "shutdown") {
            result.emplace("draining", json::Value(true));
            if (shutdown_hook_) shutdown_hook_();
        } else {
            throw ProtocolError(ErrorCode::UnknownMethod,
                                "unknown method '" + request.method + "'");
        }
        outcome.ok = true;
        outcome.result = std::move(result);
    } catch (const ProtocolError& e) {
        registry.counter("serve.errors").add(1);
        outcome.code = e.code();
        outcome.message = e.what();
    } catch (const std::exception& e) {
        registry.counter("serve.errors").add(1);
        outcome.code = ErrorCode::Internal;
        outcome.message = e.what();
    }

    registry.histogram("serve.latency." + request.method).record(clock.elapsed_seconds());
    return outcome;
}

std::string Router::render(const json::Value& id, const Outcome& outcome) {
    if (outcome.ok) return render_result(id, outcome.result);
    return render_error(id, outcome.code, outcome.message);
}

std::string Router::handle(const Request& request) {
    auto& registry = support::MetricsRegistry::global();

    // A request that waited past its deadline in the queue is dead on
    // arrival — reject before burning evaluation time on it.
    if (request.expired(std::chrono::steady_clock::now())) {
        registry.counter("serve.rejected_deadline").add(1);
        return render_error(request.id, ErrorCode::DeadlineExceeded,
                            "deadline expired before execution");
    }

    const Outcome outcome = execute(request);

    // The result is worthless if the caller's deadline passed while we
    // computed it; report the expiry so clients can trust deadlines.
    if (outcome.ok && request.expired(std::chrono::steady_clock::now())) {
        registry.counter("serve.rejected_deadline").add(1);
        return render_error(request.id, ErrorCode::DeadlineExceeded,
                            "deadline expired during execution");
    }
    return render(request.id, outcome);
}

json::Object Router::do_eval(const json::Value& params) {
    const std::string mechanism_spec = require_string(params, "mechanism");
    const std::uint64_t seed = optional_count(params, "seed", 1);
    const std::size_t replications = optional_count(params, "replications", 200);
    if (replications == 0 || replications > config_.max_replications) {
        bad_param("replications",
                  "must be in [1, " + std::to_string(config_.max_replications) + "]");
    }

    election::EvalOptions eval;
    eval.replications = replications;
    eval.inner_samples = optional_count(params, "inner_samples", eval.inner_samples);
    eval.approximate_tally = optional_bool(params, "approximate", false);
    // Adaptive stopping: a target standard error replaces the fixed
    // replication count; the ceiling stays under the admission cap.
    eval.target_std_error = optional_number(params, "target_se", 0.0);
    if (eval.target_std_error < 0.0) bad_param("target_se", "must be >= 0");
    eval.max_replications = optional_count(params, "max_replications",
                                           std::min(eval.max_replications,
                                                    config_.max_replications));
    if (eval.max_replications == 0 ||
        eval.max_replications > config_.max_replications) {
        bad_param("max_replications",
                  "must be in [1, " + std::to_string(config_.max_replications) + "]");
    }
    eval.tally_epsilon =
        optional_number(params, "tally_eps", config_.default_tally_epsilon);
    if (eval.tally_epsilon < 0.0 || eval.tally_epsilon >= 1.0) {
        bad_param("tally_eps", "must be in [0, 1)");
    }
    // Certified anytime-valid stopping (≡ CLI `--certify γ δ`): a
    // confidence sequence decides "gain ≥ certify_gamma" at error
    // certify_delta; results carry cert_* fields (docs/STATISTICS.md).
    eval.certify.delta = optional_number(params, "certify_delta", 0.0);
    if (eval.certify.delta < 0.0 || eval.certify.delta >= 1.0) {
        bad_param("certify_delta", "must be in [0, 1)");
    }
    if (eval.certify.enabled()) {
        eval.certify.gamma = optional_number(params, "certify_gamma", 0.0);
        try {
            eval.certify.boundary = stats::parse_cs_boundary(optional_string(
                params, "certify_boundary", "empirical_bernstein"));
        } catch (const support::ContractViolation& e) {
            bad_param("certify_boundary", e.what());
        }
        if (eval.approximate_tally) {
            bad_param("certify_delta",
                      "certification is incompatible with approximate tallies");
        }
    }
    const bool discard_cycles = optional_bool(params, "discard_cycles", false);
    if (discard_cycles) eval.cycle_policy = delegation::CyclePolicy::Discard;
    const std::size_t threads = optional_count(params, "threads", config_.eval_threads);
    eval.threads =
        threads == 0 ? support::ThreadPool::global().worker_count() : threads;

    const auto mechanism = cli::make_mechanism(mechanism_spec);
    if (!mechanism->approval_respecting() && !discard_cycles) {
        bad_param("mechanism", "'" + mechanism_spec +
                                   "' can create delegation cycles; set "
                                   "\"discard_cycles\": true");
    }

    json::Object result;
    election::GainReport report;
    if (params.is_object() && params.find("instance")) {
        // Cached-instance path ≡ CLI `--load-instance`: the RNG starts
        // fresh at `seed` and drives only the replication loop.
        const std::string fingerprint = require_string(params, "instance");
        const auto cached = cache_.find(fingerprint);
        if (!cached) {
            throw ProtocolError(ErrorCode::NotFound,
                                "instance '" + fingerprint +
                                    "' not cached (call instance.load first)");
        }
        rng::Rng rng(seed);
        report = election::estimate_gain(*mechanism, cached->instance, rng, eval);
        result.emplace("instance", json::Value(fingerprint));
    } else {
        // Inline path ≡ CLI `--graph/--competencies`: one RNG seeded at
        // `seed` realizes the graph, then the competencies, then runs the
        // replications — the same draws in the same order.
        const std::string graph_spec = require_string(params, "graph");
        const std::string competency_spec = require_string(params, "competencies");
        const std::size_t n = require_count(params, "n");
        const double alpha = require_number(params, "alpha");
        rng::Rng rng(seed);
        auto graph = cli::make_graph(graph_spec, n, rng);
        auto competencies =
            cli::make_competencies(competency_spec, graph.vertex_count(), rng);
        const model::Instance instance(std::move(graph), std::move(competencies), alpha);
        report = election::estimate_gain(*mechanism, instance, rng, eval);
    }

    auto fields = report_to_json(report);
    result.merge(fields);
    result.emplace("threads", json::Value(static_cast<double>(eval.threads)));
    result.emplace("seed", json::Value(static_cast<double>(seed)));
    support::MetricsRegistry::global().counter("serve.evals").add(1);
    return result;
}

json::Object Router::do_instance_load(const json::Value& params) {
    const std::string graph_spec = require_string(params, "graph");
    const std::string competency_spec = require_string(params, "competencies");
    const std::size_t n = require_count(params, "n");
    const double alpha = require_number(params, "alpha");
    const std::uint64_t seed = optional_count(params, "seed", 1);
    if (alpha <= 0) bad_param("alpha", "approval margin must be > 0");

    bool was_hit = false;
    const auto entry =
        cache_.load(graph_spec, competency_spec, n, alpha, seed, &was_hit);
    json::Object result;
    result.emplace("instance", json::Value(entry->fingerprint));
    result.emplace("voters",
                   json::Value(static_cast<double>(entry->instance.voter_count())));
    result.emplace("alpha", json::Value(entry->alpha));
    result.emplace("cached", json::Value(was_hit));
    result.emplace("description", json::Value(entry->instance.describe()));
    return result;
}

json::Object Router::do_instance_info(const json::Value& params) {
    const std::string fingerprint = require_string(params, "instance");
    const auto entry = cache_.find(fingerprint);
    if (!entry) {
        throw ProtocolError(ErrorCode::NotFound,
                            "instance '" + fingerprint + "' not cached");
    }
    json::Object result;
    result.emplace("instance", json::Value(entry->fingerprint));
    result.emplace("graph", json::Value(entry->graph_spec));
    result.emplace("competencies", json::Value(entry->competency_spec));
    result.emplace("n", json::Value(static_cast<double>(entry->n)));
    result.emplace("alpha", json::Value(entry->alpha));
    result.emplace("seed", json::Value(static_cast<double>(entry->seed)));
    result.emplace("voters",
                   json::Value(static_cast<double>(entry->instance.voter_count())));
    result.emplace("description", json::Value(entry->instance.describe()));
    return result;
}

std::shared_ptr<LiveState> Router::open_live(const json::Value& params) {
    const std::string fingerprint = require_string(params, "instance");
    const auto cached = cache_.find(fingerprint);
    if (!cached) {
        throw ProtocolError(ErrorCode::NotFound,
                            "instance '" + fingerprint +
                                "' not cached (call instance.load first)");
    }
    const double tally_eps =
        optional_number(params, "tally_eps", config_.live_tally_epsilon);
    if (tally_eps < 0.0 || tally_eps >= 1.0) {
        bad_param("tally_eps", "must be in [0, 1)");
    }
    return live_.open(cached, tally_eps);
}

json::Object Router::do_instance_patch(const json::Value& params) {
    return open_live(params)->apply_patch(params);
}

json::Object Router::do_instance_state(const json::Value& params) {
    return open_live(params)->state();
}

json::Object Router::do_metrics() {
    // Reuse the liquidd.metrics.v1 writer verbatim, re-parsed into the
    // response — one schema for files and RPC alike.
    std::ostringstream os;
    support::write_metrics_json(os, support::MetricsRegistry::global().snapshot());
    json::Object result;
    result.emplace("report", json::parse(os.str()));
    return result;
}

json::Object Router::do_health() {
    json::Object result;
    const bool draining = status_ && status_->draining.load(std::memory_order_relaxed);
    result.emplace("status", json::Value(std::string(draining ? "draining" : "ok")));
    result.emplace(
        "queue_depth",
        json::Value(static_cast<double>(
            status_ ? status_->queue_depth.load(std::memory_order_relaxed) : 0)));
    result.emplace(
        "connections",
        json::Value(static_cast<double>(
            status_ ? status_->connections.load(std::memory_order_relaxed) : 0)));
    result.emplace("instances", json::Value(static_cast<double>(cache_.size())));
    return result;
}

}  // namespace ld::serve
