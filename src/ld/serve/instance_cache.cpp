#include "ld/serve/instance_cache.hpp"

#include <sstream>

#include "ld/cli/specs.hpp"
#include "ld/experiments/harness.hpp"  // stable_seed
#include "support/json.hpp"
#include "support/metrics.hpp"

namespace ld::serve {

std::string InstanceCache::fingerprint(const std::string& graph_spec,
                                       const std::string& competency_spec,
                                       std::size_t n, double alpha,
                                       std::uint64_t seed) {
    // Canonical text mirrors SweepSpec::fingerprint: '\x1f'-separated
    // fields, numbers via json::format_number so 0.05 and 5e-2 differ
    // only if their doubles do.
    std::ostringstream canon;
    const char sep = '\x1f';
    canon << "liquidd.instance.v1" << sep << graph_spec << sep << competency_spec << sep
          << n << sep << support::json::format_number(alpha) << sep << seed;
    std::ostringstream hex;
    hex << "0x" << std::hex << experiments::stable_seed(canon.str());
    return hex.str();
}

std::shared_ptr<const CachedInstance> InstanceCache::load(
    const std::string& graph_spec, const std::string& competency_spec, std::size_t n,
    double alpha, std::uint64_t seed, bool* was_hit) {
    const std::string key = fingerprint(graph_spec, competency_spec, n, alpha, seed);
    auto& registry = support::MetricsRegistry::global();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (const auto it = entries_.find(key); it != entries_.end()) {
            if (was_hit) *was_hit = true;
            registry.counter("serve.instance_cache_hits").add(1);
            return it->second;
        }
    }

    // Realize outside the lock (graph generation can be expensive); the
    // same deterministic sequence as the CLI path: one RNG seeded with
    // `seed` drives graph then competencies.
    rng::Rng rng(seed);
    auto graph = cli::make_graph(graph_spec, n, rng);
    auto competencies = cli::make_competencies(competency_spec, graph.vertex_count(), rng);
    auto entry = std::make_shared<CachedInstance>(
        key, graph_spec, competency_spec, n, alpha, seed,
        model::Instance(std::move(graph), std::move(competencies), alpha));

    std::lock_guard<std::mutex> lock(mutex_);
    const auto [it, inserted] = entries_.emplace(key, std::move(entry));
    if (was_hit) *was_hit = !inserted;  // racing load: first insert wins
    registry.counter(inserted ? "serve.instance_cache_misses"
                              : "serve.instance_cache_hits")
        .add(1);
    return it->second;
}

std::shared_ptr<const CachedInstance> InstanceCache::find(
    const std::string& fingerprint) const {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(fingerprint);
    return it == entries_.end() ? nullptr : it->second;
}

std::size_t InstanceCache::size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

void InstanceCache::clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
}

}  // namespace ld::serve
