// Request execution for the serve layer: one method table mapping
// `liquidd.rpc.v1` methods onto the evaluation engine.  The Router is
// synchronous and transport-free — the Server wraps it with sockets,
// admission control, and batching; tests call handle() directly.
//
// CLI parity contract: `eval` reproduces the exact RNG sequence of the
// one-shot CLI paths, so a served estimate with a fixed (params, seed,
// threads) is bit-identical to `liquidd run` with the same flags —
// inline specs mirror the build-then-evaluate path, cached-instance
// evals mirror `--load-instance` (fresh RNG, evaluate only).

#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>

#include "ld/serve/instance_cache.hpp"
#include "ld/serve/live_state.hpp"
#include "ld/serve/protocol.hpp"

namespace ld::serve {

/// Shared live-state block the health endpoint reports; written by the
/// Server, read by the Router.
struct ServeStatus {
    std::atomic<bool> draining{false};
    std::atomic<std::int64_t> queue_depth{0};
    std::atomic<std::uint64_t> connections{0};
};

struct RouterConfig {
    /// Default EvalOptions::threads when an eval request names none
    /// (0 = auto: one per hardware thread, like the CLI).
    std::size_t eval_threads = 1;
    /// Admission sanity cap on per-request replications (bad clients
    /// should get an error, not a day-long eval hogging the dispatcher).
    /// Also clamps the adaptive-mode ceiling (`max_replications` param).
    std::size_t max_replications = 1'000'000;
    /// Default ε for the certified truncated inner tally when an eval
    /// request names no `tally_eps` (0 = exact DP).
    double default_tally_epsilon = 0.0;
    /// Default ε for the live product trees a first `instance.patch` /
    /// `instance.state` creates (when the request names no `tally_eps`).
    /// Unlike evals this is NOT 0: exact windows cost O(n) per patched
    /// leaf at the root, defeating the hot path — 1e-9 keeps every
    /// reported live probability within 1e-9 of exact at O(log n · √n).
    double live_tally_epsilon = 1e-9;
};

class Router {
public:
    /// `status` may be null (unit tests); health then reports zeros.
    Router(RouterConfig config, InstanceCache& cache, ServeStatus* status = nullptr);

    /// The id-free half of a response: what execution produced, before
    /// rendering against a particular request id.  The micro-batcher
    /// computes one Outcome for a group of identical eval requests and
    /// renders it once per member.
    struct Outcome {
        bool ok = false;
        json::Object result;                       ///< when ok
        ErrorCode code = ErrorCode::Internal;      ///< when !ok
        std::string message;
    };

    /// Method dispatch + error mapping + per-method latency metrics.
    /// Never throws; deadline checks are the caller's job (see handle()).
    Outcome execute(const Request& request);

    /// Render an Outcome against a request id.
    static std::string render(const json::Value& id, const Outcome& outcome);

    /// Execute one parsed request end to end: deadline check before and
    /// after execution, method dispatch, error mapping.  Always returns a
    /// well-formed response line (never throws).
    std::string handle(const Request& request);

    /// Invoked when a `shutdown` request is executed (Server hooks its
    /// drain in here; default no-op).
    void set_shutdown_hook(std::function<void()> hook) { shutdown_hook_ = std::move(hook); }

    InstanceCache& cache() noexcept { return cache_; }
    LiveTable& live() noexcept { return live_; }
    const RouterConfig& config() const noexcept { return config_; }

private:
    json::Object do_eval(const json::Value& params);
    json::Object do_instance_load(const json::Value& params);
    json::Object do_instance_info(const json::Value& params);
    json::Object do_instance_patch(const json::Value& params);
    json::Object do_instance_state(const json::Value& params);
    json::Object do_metrics();
    json::Object do_health();

    /// Resolve the live session for params.instance, creating it at the
    /// all-vote profile on first touch.
    std::shared_ptr<LiveState> open_live(const json::Value& params);

    RouterConfig config_;
    InstanceCache& cache_;
    ServeStatus* status_;
    LiveTable live_;
    std::function<void()> shutdown_hook_;
};

}  // namespace ld::serve
