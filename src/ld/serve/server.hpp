// The `liquidd serve` long-running evaluation server.
//
// Threading model (down from ~one thread per connection to two):
//
//   event-loop thread  owned by the EventFront: accepts clients, frames
//                      request lines, flushes responses.  Cheap methods
//                      (instance.info, metrics, health, shutdown)
//                      execute inline on this thread; `eval` goes
//                      through admission into the bounded queue — or is
//                      rejected with `overloaded` when the queue is
//                      full, which is the whole backpressure story: the
//                      server never buffers more than queue_capacity
//                      evals.  `instance.load` also hops to the
//                      dispatcher (bypassing the admission bound — it
//                      is control plane, never `overloaded`) so a large
//                      instance realization cannot stall the loop.
//                      Response writes are buffered per connection and
//                      policed by write_timeout: a peer that stops
//                      reading is dropped, never allowed to wedge the
//                      dispatcher or a drain.
//   dispatcher thread  pops evals, coalesces up to batch_max requests
//                      that target the same cached instance into one
//                      micro-batch (identical requests are computed once
//                      and fanned back to every waiter), and runs them
//                      on the shared ReplicationEngine/ThreadPool.
//
// Graceful drain (SIGTERM/SIGINT via support::SignalDrain — its wake fd
// is watched by the event loop —, the `shutdown` RPC, or
// request_drain()): stop accepting, reject new evals with
// `shutting_down`, finish every admitted request, flush every response,
// flush metrics, close connections.  wait() performs the teardown and
// returns 0.

#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "ld/serve/event_front.hpp"
#include "ld/serve/instance_cache.hpp"
#include "ld/serve/protocol.hpp"
#include "ld/serve/router.hpp"
#include "support/net.hpp"

namespace ld::serve {

struct ServerConfig {
    /// Unix-domain socket path ("" = no Unix listener).
    std::string unix_socket;
    /// TCP loopback port; 0 picks an ephemeral port (readable via
    /// Server::tcp_port after start()).  nullopt = no TCP listener.
    std::optional<std::uint16_t> tcp_port;
    /// Admission bound: evals queued beyond this are rejected with
    /// `overloaded`.  0 rejects every eval (useful in tests).
    std::size_t queue_capacity = 128;
    /// Micro-batch bound: evals per dispatcher pass sharing one warm
    /// instance.
    std::size_t batch_max = 16;
    /// Default EvalOptions::threads for requests that name none (0 =
    /// auto, one per hardware thread).
    std::size_t eval_threads = 0;
    /// Per-request replication sanity cap.
    std::size_t max_replications = 1'000'000;
    /// Default ε for the certified truncated inner tally applied to eval
    /// requests that name no `tally_eps` (0 = exact DP).
    double tally_epsilon = 0.0;
    /// Default per-request deadline applied when a request carries no
    /// deadline_ms (0 = none).
    std::chrono::milliseconds default_deadline{0};
    /// Bound on how long a response may sit unflushed because the
    /// client's socket buffer stays full (it stopped reading): such a
    /// peer is dropped, so it can never head-of-line-block the
    /// dispatcher or hang a drain (0 = buffer indefinitely).
    std::chrono::milliseconds write_timeout{5'000};
    /// Watch support::SignalDrain's wake pipe and drain on SIGINT/SIGTERM
    /// (the caller installs the handler; see cli::run_serve).
    bool drain_on_signal = false;
    /// Flush a liquidd.metrics.v1 report here as the last drain step
    /// ("" = none).
    std::string metrics_out;
};

class Server {
public:
    explicit Server(ServerConfig config);

    /// Drains (if still running) and joins everything.
    ~Server();

    Server(const Server&) = delete;
    Server& operator=(const Server&) = delete;

    /// Bind listeners and spawn the event-loop/dispatcher threads.
    /// Throws support::net::NetError when a bind fails.  On return the
    /// listeners are accepting.
    void start();

    /// Block until a drain is requested, then tear down: finish admitted
    /// evals, close connections, flush metrics.  Returns the process
    /// exit code (0).
    int wait();

    /// Trigger a graceful drain (thread-safe; idempotent).
    void request_drain();

    bool draining() const noexcept {
        return status_.draining.load(std::memory_order_relaxed);
    }

    /// Bound TCP port (after start(); 0 when no TCP listener).
    std::uint16_t tcp_port() const noexcept { return tcp_port_; }

    /// Synchronous in-process entry sharing the full pipeline —
    /// parsing, default deadline, admission against the live queue,
    /// routing — without sockets.  Drives unit tests and bench_serve.
    std::string handle_line(const std::string& line);

    Router& router() noexcept { return router_; }
    InstanceCache& cache() noexcept { return cache_; }
    const ServerConfig& config() const noexcept { return config_; }

private:
    struct QueuedEval {
        Request request;
        std::shared_ptr<Conn> conn;
        std::string batch_key;  ///< instance fingerprint ("" = never batched)
        std::string dedup_key;  ///< full params identity
    };

    void handle_connection_line(const std::shared_ptr<Conn>& conn,
                                const std::string& line);
    void dispatcher_loop();
    void execute_batch(std::vector<QueuedEval>& batch);
    Request parse_with_default_deadline(const std::string& line);
    bool try_admit_locked() const;  ///< queue_mutex_ held
    void set_queue_depth_locked();  ///< queue_mutex_ held
    void refresh_loop_gauges();
    void do_drain();

    ServerConfig config_;
    InstanceCache cache_;
    ServeStatus status_;
    Router router_;

    std::unique_ptr<EventFront> front_;
    std::uint16_t tcp_port_ = 0;

    std::thread dispatcher_;

    std::mutex queue_mutex_;
    std::condition_variable queue_cv_;   ///< dispatcher wakeups
    std::condition_variable idle_cv_;    ///< drain waits for empty + idle
    std::deque<QueuedEval> queue_;
    bool dispatcher_busy_ = false;
    bool stop_dispatcher_ = false;

    std::mutex drain_mutex_;
    std::condition_variable drain_cv_;
    bool drain_requested_ = false;
    bool started_ = false;
    bool drained_ = false;
};

}  // namespace ld::serve
