#include "ld/serve/server.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <fstream>
#include <unordered_map>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "support/metrics.hpp"
#include "support/signal_drain.hpp"

namespace ld::serve {

namespace {

/// Params identity used to deduplicate evals inside a micro-batch.
/// json::Object is a std::map, so dump() is key-order canonical:
/// identical params always produce identical keys.  Requests that spell
/// a default out versus omitting it get different keys — dedup is an
/// optimisation, never a correctness requirement.
std::string dedup_key_of(const Request& request) {
    return request.method + '\x1f' + json::dump(request.params);
}

/// Batch grouping key: the cached-instance fingerprint.  Inline-spec
/// evals return "" and are never grouped (they share no warm state).
std::string batch_key_of(const Request& request) {
    if (!request.params.is_object()) return {};
    const json::Value* instance = request.params.find("instance");
    if (instance && instance->is_string()) return instance->as_string();
    return {};
}

}  // namespace

void Server::ClientConn::send(const std::string& line) noexcept {
    if (dead.load(std::memory_order_relaxed)) return;
    std::lock_guard<std::mutex> lock(write_mutex);
    try {
        support::net::write_line(socket, line, write_timeout_ms);
    } catch (const support::net::NetError&) {
        // Peer hung up, or stopped reading until the bounded write timed
        // out.  Either way the client is unrecoverable: drop it so it
        // cannot stall the dispatcher again, and shut the socket down so
        // its reader thread unblocks and reaps the connection.
        dead.store(true, std::memory_order_relaxed);
        socket.shutdown_both();
    }
}

Server::Server(ServerConfig config)
    : config_(std::move(config)),
      router_(RouterConfig{config_.eval_threads, config_.max_replications,
                           config_.tally_epsilon},
              cache_, &status_) {
    router_.set_shutdown_hook([this] { request_drain(); });
}

Server::~Server() {
    if (started_ && !drained_) {
        request_drain();
        wait();
    }
    for (int fd : wake_pipe_) {
        if (fd != -1) ::close(fd);
    }
}

void Server::start() {
    if (started_) return;
    if (config_.unix_socket.empty() && !config_.tcp_port.has_value()) {
        throw support::net::NetError("serve: no listener configured");
    }
    if (::pipe(wake_pipe_) != 0) {
        throw support::net::NetError("serve: cannot create wake pipe");
    }
    for (int fd : wake_pipe_) {
        ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL) | O_NONBLOCK);
        ::fcntl(fd, F_SETFD, FD_CLOEXEC);
    }

    if (!config_.unix_socket.empty()) {
        unix_listener_ = support::net::Listener::unix_domain(config_.unix_socket);
    }
    if (config_.tcp_port.has_value()) {
        tcp_listener_ = support::net::Listener::tcp_loopback(*config_.tcp_port);
        tcp_port_ = tcp_listener_->port();
    }

    started_ = true;
    dispatcher_ = std::thread([this] { dispatcher_loop(); });
    if (unix_listener_) {
        accept_threads_.emplace_back([this] { accept_loop(*unix_listener_); });
    }
    if (tcp_listener_) {
        accept_threads_.emplace_back([this] { accept_loop(*tcp_listener_); });
    }
    if (config_.drain_on_signal) {
        signal_watcher_ = std::thread([this] { watch_signals(); });
    }
}

void Server::request_drain() {
    {
        std::lock_guard<std::mutex> lock(drain_mutex_);
        if (drain_requested_) return;
        drain_requested_ = true;
    }
    status_.draining.store(true, std::memory_order_relaxed);
    if (wake_pipe_[1] != -1) {
        const char byte = 1;
        [[maybe_unused]] const auto rc = ::write(wake_pipe_[1], &byte, 1);
    }
    drain_cv_.notify_all();
}

int Server::wait() {
    {
        std::unique_lock<std::mutex> lock(drain_mutex_);
        drain_cv_.wait(lock, [this] { return drain_requested_; });
        if (drained_) return 0;
        drained_ = true;
    }
    do_drain();
    return 0;
}

void Server::do_drain() {
    // 1. Stop accepting: the wake pipe is already readable, so accept
    //    loops fall out of poll; join them and close the listeners.
    for (auto& thread : accept_threads_) {
        if (thread.joinable()) thread.join();
    }
    accept_threads_.clear();
    if (signal_watcher_.joinable()) signal_watcher_.join();
    if (unix_listener_) unix_listener_->close();
    if (tcp_listener_) tcp_listener_->close();

    // 2. Finish in-flight work: connection threads now reject new evals
    //    (draining flag), so the queue only shrinks; wait for the
    //    dispatcher to empty it, then stop the dispatcher.
    {
        std::unique_lock<std::mutex> lock(queue_mutex_);
        idle_cv_.wait(lock, [this] { return queue_.empty() && !dispatcher_busy_; });
        stop_dispatcher_ = true;
    }
    queue_cv_.notify_all();
    if (dispatcher_.joinable()) dispatcher_.join();

    // 3. Close connections: shut the read side so reader threads
    //    unblock and finish any inline request (their responses still
    //    flush — bounded by write_timeout), then wait for every
    //    detached reader to reap itself.  Copy, don't swap: exiting
    //    readers remove themselves from conns_ concurrently.
    std::vector<std::shared_ptr<ClientConn>> conns;
    {
        std::lock_guard<std::mutex> lock(conns_mutex_);
        conns = conns_;
    }
    for (const auto& conn : conns) {
        if (conn->socket.valid()) ::shutdown(conn->socket.fd(), SHUT_RD);
    }
    conns.clear();  // sockets close when the last shared_ptr drops
    {
        std::unique_lock<std::mutex> lock(conns_mutex_);
        conns_cv_.wait(lock, [this] { return active_readers_ == 0; });
        conns_.clear();
    }

    // 4. Flush metrics.
    auto& registry = support::MetricsRegistry::global();
    registry.counter("serve.drains").add(1);
    if (!config_.metrics_out.empty()) {
        std::ofstream out(config_.metrics_out);
        if (out) support::write_metrics_json(out, registry.snapshot());
    }
}

void Server::accept_loop(support::net::Listener& listener) {
    while (!draining()) {
        std::optional<support::net::Socket> client;
        try {
            client = listener.accept(wake_pipe_[0]);
        } catch (const support::net::NetError& e) {
            // A failed accept must degrade, never terminate the server.
            std::fprintf(stderr, "liquidd serve: accept failed: %s\n", e.what());
            support::MetricsRegistry::global().counter("serve.accept_errors").add(1);
            pollfd wake{wake_pipe_[0], POLLIN, 0};
            ::poll(&wake, 1, 100);
            continue;
        }
        if (!client.has_value()) break;  // woken for drain
        auto conn = std::make_shared<ClientConn>();
        conn->socket = std::move(*client);
        conn->write_timeout_ms =
            config_.write_timeout.count() > 0
                ? static_cast<int>(config_.write_timeout.count())
                : -1;
        {
            std::lock_guard<std::mutex> lock(conns_mutex_);
            if (draining()) {
                conn->socket.close();
                break;
            }
            conns_.push_back(conn);
            ++active_readers_;
        }
        status_.connections.fetch_add(1, std::memory_order_relaxed);
        support::MetricsRegistry::global().counter("serve.connections").add(1);
        // Detached: the thread reaps itself via finish_connection, and
        // do_drain waits on active_readers_ instead of joining handles.
        std::thread([this, conn] { connection_loop(conn); }).detach();
    }
}

void Server::watch_signals() {
    pollfd fds[2] = {{support::SignalDrain::wake_fd(), POLLIN, 0},
                     {wake_pipe_[0], POLLIN, 0}};
    while (true) {
        const int ready = ::poll(fds, 2, -1);
        if (ready < 0 && errno == EINTR) continue;
        break;  // signal arrived, drain requested, or poll failed
    }
    if (support::SignalDrain::requested()) request_drain();
}

void Server::connection_loop(std::shared_ptr<ClientConn> conn) {
    try {
        conn->send(render_handshake());
        support::net::LineReader reader(conn->socket);
        std::string line;
        while (reader.read_line(line)) {
            handle_connection_line(conn, line);
        }
    } catch (const support::net::NetError&) {
        // Connection dropped mid-read; treat as EOF.
    }
    finish_connection(conn);
}

void Server::finish_connection(const std::shared_ptr<ClientConn>& conn) {
    // The socket is NOT closed here: queued evals may still hold the
    // conn and flush responses to a peer that shut down only its write
    // side.  The fd closes with the last shared_ptr, which is also what
    // makes fd reuse safe — no send can ever race a close.
    status_.connections.fetch_sub(1, std::memory_order_relaxed);
    // Decrement-and-notify under the mutex, and touch no member after:
    // once active_readers_ hits 0 a draining Server may be destroyed
    // out from under this (detached) thread.
    std::lock_guard<std::mutex> lock(conns_mutex_);
    conns_.erase(std::remove(conns_.begin(), conns_.end(), conn), conns_.end());
    --active_readers_;
    conns_cv_.notify_all();
}

Request Server::parse_with_default_deadline(const std::string& line) {
    Request request = parse_request(line, std::chrono::steady_clock::now());
    if (!request.deadline.has_value() && config_.default_deadline.count() > 0) {
        request.deadline = request.admitted_at + config_.default_deadline;
    }
    return request;
}

bool Server::try_admit_locked() const { return queue_.size() < config_.queue_capacity; }

void Server::set_queue_depth_locked() {
    const auto depth = static_cast<std::int64_t>(queue_.size());
    status_.queue_depth.store(depth, std::memory_order_relaxed);
    support::MetricsRegistry::global().gauge("serve.queue_depth").set(depth);
}

void Server::handle_connection_line(const std::shared_ptr<ClientConn>& conn,
                                    const std::string& line) {
    auto& registry = support::MetricsRegistry::global();
    Request request;
    try {
        request = parse_with_default_deadline(line);
    } catch (const ProtocolError& e) {
        registry.counter("serve.errors").add(1);
        conn->send(render_error(id_of_line(line), e.code(), e.what()));
        return;
    }

    if (request.method != "eval") {
        // Cheap control-plane methods execute inline on the connection
        // thread: health and shutdown must answer even when the eval
        // queue is saturated.
        conn->send(router_.handle(request));
        return;
    }

    if (draining()) {
        conn->send(render_error(request.id, ErrorCode::ShuttingDown,
                                "server is draining"));
        return;
    }
    bool shutting_down = false;
    bool overloaded = false;
    {
        std::lock_guard<std::mutex> lock(queue_mutex_);
        // Authoritative drain check: the fast-path check above races
        // with do_drain, which observes an empty queue and sets
        // stop_dispatcher_ under this mutex.  An eval enqueued after
        // that point would never be dispatched — so re-check here and
        // reject instead of silently dropping it.
        if (stop_dispatcher_ || draining()) {
            shutting_down = true;
        } else if (!try_admit_locked()) {
            overloaded = true;
        } else {
            QueuedEval queued;
            queued.batch_key = batch_key_of(request);
            queued.dedup_key = dedup_key_of(request);
            queued.request = std::move(request);
            queued.conn = conn;
            queue_.push_back(std::move(queued));
            set_queue_depth_locked();
            registry.counter("serve.admitted").add(1);
        }
    }
    if (shutting_down) {
        conn->send(render_error(request.id, ErrorCode::ShuttingDown,
                                "server is draining"));
        return;
    }
    if (overloaded) {
        registry.counter("serve.rejected_overload").add(1);
        conn->send(render_error(request.id, ErrorCode::Overloaded,
                                "admission queue full (capacity " +
                                    std::to_string(config_.queue_capacity) +
                                    "); retry later"));
        return;
    }
    queue_cv_.notify_one();
}

void Server::dispatcher_loop() {
    while (true) {
        std::vector<QueuedEval> batch;
        {
            std::unique_lock<std::mutex> lock(queue_mutex_);
            queue_cv_.wait(lock, [this] { return stop_dispatcher_ || !queue_.empty(); });
            if (queue_.empty()) {
                if (stop_dispatcher_) break;
                continue;
            }
            batch.push_back(std::move(queue_.front()));
            queue_.pop_front();
            // Coalesce queued evals on the same cached instance into this
            // pass (order across different instances is not preserved —
            // responses are id-matched, so clients do not care).
            if (!batch.front().batch_key.empty()) {
                for (auto it = queue_.begin();
                     it != queue_.end() && batch.size() < config_.batch_max;) {
                    if (it->batch_key == batch.front().batch_key) {
                        batch.push_back(std::move(*it));
                        it = queue_.erase(it);
                    } else {
                        ++it;
                    }
                }
            }
            dispatcher_busy_ = true;
            set_queue_depth_locked();
        }

        execute_batch(batch);

        {
            std::lock_guard<std::mutex> lock(queue_mutex_);
            dispatcher_busy_ = false;
        }
        idle_cv_.notify_all();
    }
    idle_cv_.notify_all();
}

void Server::execute_batch(std::vector<QueuedEval>& batch) {
    auto& registry = support::MetricsRegistry::global();
    registry.counter("serve.batches").add(1);
    if (batch.size() > 1) {
        registry.counter("serve.batched_evals").add(batch.size());
    }
    // Coalescing effectiveness: distribution of same-instance batch
    // sizes the dispatcher actually formed (1 = no coalescing happened).
    registry.histogram("dispatch.batch_size")
        .record(static_cast<double>(batch.size()));

    // Identical requests are computed once; every further waiter gets the
    // shared outcome rendered against its own id.  This is the batching
    // payoff: N clients polling the same (instance, mechanism, seed)
    // share one replication sweep on the pool.
    std::unordered_map<std::string, Router::Outcome> computed;
    for (QueuedEval& item : batch) {
        const auto now = std::chrono::steady_clock::now();
        if (item.request.expired(now)) {
            registry.counter("serve.rejected_deadline").add(1);
            item.conn->send(render_error(item.request.id, ErrorCode::DeadlineExceeded,
                                         "deadline expired in the queue"));
            continue;
        }
        const auto found = computed.find(item.dedup_key);
        const bool shared = found != computed.end();
        if (shared) registry.counter("serve.dedup_shared").add(1);
        const Router::Outcome& outcome =
            shared ? found->second
                   : computed.emplace(item.dedup_key, router_.execute(item.request))
                         .first->second;
        if (outcome.ok && item.request.expired(std::chrono::steady_clock::now())) {
            registry.counter("serve.rejected_deadline").add(1);
            item.conn->send(render_error(item.request.id, ErrorCode::DeadlineExceeded,
                                         "deadline expired during execution"));
            continue;
        }
        item.conn->send(Router::render(item.request.id, outcome));
    }
}

std::string Server::handle_line(const std::string& line) {
    auto& registry = support::MetricsRegistry::global();
    Request request;
    try {
        request = parse_with_default_deadline(line);
    } catch (const ProtocolError& e) {
        registry.counter("serve.errors").add(1);
        return render_error(id_of_line(line), e.code(), e.what());
    }

    if (request.method == "eval") {
        if (draining()) {
            return render_error(request.id, ErrorCode::ShuttingDown,
                                "server is draining");
        }
        std::size_t depth = 0;
        {
            std::lock_guard<std::mutex> lock(queue_mutex_);
            depth = queue_.size();
        }
        if (depth >= config_.queue_capacity) {
            registry.counter("serve.rejected_overload").add(1);
            return render_error(request.id, ErrorCode::Overloaded,
                                "admission queue full (capacity " +
                                    std::to_string(config_.queue_capacity) +
                                    "); retry later");
        }
        registry.counter("serve.admitted").add(1);
    }
    return router_.handle(request);
}

}  // namespace ld::serve
