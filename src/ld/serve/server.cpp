#include "ld/serve/server.hpp"

#include <atomic>
#include <fstream>
#include <unordered_map>
#include <utility>

#include "support/metrics.hpp"
#include "support/signal_drain.hpp"

namespace ld::serve {

namespace {

/// Monotone tag appended to every instance.patch dedup key: two patches
/// with byte-identical params are still two distinct state advances
/// (each bumps the epoch), so they must never share one execution the
/// way identical evals do.
std::atomic<std::uint64_t> patch_sequence{0};

/// Params identity used to deduplicate evals inside a micro-batch.
/// json::Object is a std::map, so dump() is key-order canonical:
/// identical params always produce identical keys.  Requests that spell
/// a default out versus omitting it get different keys — dedup is an
/// optimisation, never a correctness requirement.
std::string dedup_key_of(const Request& request) {
    return request.method + '\x1f' + json::dump(request.params);
}

/// Batch grouping key: the cached-instance fingerprint.  Inline-spec
/// evals return "" and are never grouped (they share no warm state).
std::string batch_key_of(const Request& request) {
    if (!request.params.is_object()) return {};
    const json::Value* instance = request.params.find("instance");
    if (instance && instance->is_string()) return instance->as_string();
    return {};
}

}  // namespace

Server::Server(ServerConfig config)
    : config_(std::move(config)),
      router_(RouterConfig{config_.eval_threads, config_.max_replications,
                           config_.tally_epsilon},
              cache_, &status_) {
    router_.set_shutdown_hook([this] { request_drain(); });
}

Server::~Server() {
    if (started_ && !drained_) {
        request_drain();
        wait();
    }
}

void Server::start() {
    if (started_) return;
    if (config_.unix_socket.empty() && !config_.tcp_port.has_value()) {
        throw support::net::NetError("serve: no listener configured");
    }

    FrontConfig front_config;
    front_config.unix_socket = config_.unix_socket;
    front_config.tcp_port = config_.tcp_port;
    front_config.write_timeout = config_.write_timeout;
    front_config.handshake = render_handshake();
    front_config.connections_gauge = &status_.connections;
    if (config_.drain_on_signal) {
        front_config.signal_wake_fd = support::SignalDrain::wake_fd();
    }
    front_ = std::make_unique<EventFront>(
        std::move(front_config),
        [this](const std::shared_ptr<Conn>& conn, const std::string& line) {
            handle_connection_line(conn, line);
        },
        [this] {
            if (support::SignalDrain::requested()) request_drain();
        });

    front_->start();  // throws NetError if a bind fails; nothing to undo yet
    tcp_port_ = front_->tcp_port();
    started_ = true;
    dispatcher_ = std::thread([this] { dispatcher_loop(); });
}

void Server::request_drain() {
    {
        std::lock_guard<std::mutex> lock(drain_mutex_);
        if (drain_requested_) return;
        drain_requested_ = true;
    }
    status_.draining.store(true, std::memory_order_relaxed);
    drain_cv_.notify_all();
}

int Server::wait() {
    {
        std::unique_lock<std::mutex> lock(drain_mutex_);
        drain_cv_.wait(lock, [this] { return drain_requested_; });
        if (drained_) return 0;
        drained_ = true;
    }
    do_drain();
    return 0;
}

void Server::do_drain() {
    // 1. Stop accepting: listeners close, further connects are refused.
    //    (front_ is null for an in-process Server that was never
    //    start()ed — handle_line still drains through wait().)
    if (front_) front_->stop_accepting();

    // 2. Finish in-flight work.  The draining flag makes every new eval
    //    a `shutting_down` rejection, so the queue only shrinks.  Settle
    //    the event loop so each request line that was readable when the
    //    drain began has been admitted or rejected, wait for the
    //    dispatcher to empty the queue, and iterate: settling can
    //    surface a last round of already-sent requests.
    while (true) {
        {
            std::unique_lock<std::mutex> lock(queue_mutex_);
            idle_cv_.wait(lock, [this] { return queue_.empty() && !dispatcher_busy_; });
        }
        if (front_) front_->settle_inputs();
        std::lock_guard<std::mutex> lock(queue_mutex_);
        if (queue_.empty() && !dispatcher_busy_) {
            stop_dispatcher_ = true;
            break;
        }
    }
    queue_cv_.notify_all();
    if (dispatcher_.joinable()) dispatcher_.join();

    // 3. Deliver every buffered response (bounded — stalled peers are
    //    swept by the loop tick meanwhile), then close all connections
    //    (clients see EOF) and stop the loop.
    const auto flush_bound = config_.write_timeout.count() > 0
                                 ? config_.write_timeout + std::chrono::milliseconds(1'000)
                                 : std::chrono::milliseconds(10'000);
    if (front_) {
        front_->flush_all(flush_bound);
        front_->close_all();
        front_->shutdown();
    }

    // 4. Flush metrics.
    refresh_loop_gauges();
    auto& registry = support::MetricsRegistry::global();
    registry.counter("serve.drains").add(1);
    if (!config_.metrics_out.empty()) {
        std::ofstream out(config_.metrics_out);
        if (out) support::write_metrics_json(out, registry.snapshot());
    }
}

Request Server::parse_with_default_deadline(const std::string& line) {
    Request request = parse_request(line, std::chrono::steady_clock::now());
    if (!request.deadline.has_value() && config_.default_deadline.count() > 0) {
        request.deadline = request.admitted_at + config_.default_deadline;
    }
    return request;
}

bool Server::try_admit_locked() const { return queue_.size() < config_.queue_capacity; }

void Server::set_queue_depth_locked() {
    const auto depth = static_cast<std::int64_t>(queue_.size());
    status_.queue_depth.store(depth, std::memory_order_relaxed);
    support::MetricsRegistry::global().gauge("serve.queue_depth").set(depth);
}

void Server::refresh_loop_gauges() {
    if (!front_) return;
    auto& registry = support::MetricsRegistry::global();
    registry.gauge("loop.fds").set(static_cast<std::int64_t>(front_->loop_fd_count()));
    registry.gauge("loop.conns")
        .set(static_cast<std::int64_t>(front_->connection_count()));
}

void Server::handle_connection_line(const std::shared_ptr<Conn>& conn,
                                    const std::string& line) {
    auto& registry = support::MetricsRegistry::global();
    Request request;
    try {
        request = parse_with_default_deadline(line);
    } catch (const ProtocolError& e) {
        registry.counter("serve.errors").add(1);
        conn->send(render_error(id_of_line(line), e.code(), e.what()));
        return;
    }

    const bool is_eval = request.method == "eval";
    const bool is_load = request.method == "instance.load";
    // instance.patch rides the eval queue: it shares the per-instance
    // batch key, so patches and evals on one live session execute in
    // admission (FIFO) order — an eval admitted after a patch sees the
    // patched state.
    const bool is_patch = request.method == "instance.patch";
    if (!is_eval && !is_load && !is_patch) {
        // Cheap control-plane methods execute inline on the loop thread:
        // health and shutdown must answer even when the eval queue is
        // saturated.
        if (request.method == "metrics") refresh_loop_gauges();
        conn->send(router_.handle(request));
        return;
    }

    if ((is_eval || is_patch) && draining()) {
        conn->send(render_error(request.id, ErrorCode::ShuttingDown,
                                "server is draining"));
        return;
    }
    bool shutting_down = false;
    bool overloaded = false;
    bool run_inline = false;
    {
        std::lock_guard<std::mutex> lock(queue_mutex_);
        // Authoritative drain check: the fast-path check above races
        // with do_drain, which observes an empty queue and sets
        // stop_dispatcher_ under this mutex.  A request enqueued after
        // that point would never be dispatched — so re-check here;
        // evals are rejected, instance.load falls back to running
        // inline (it is valid during a drain, matching the old
        // connection-thread behavior).
        if (stop_dispatcher_ || draining()) {
            if (is_eval || is_patch) {
                shutting_down = true;
            } else {
                run_inline = true;
            }
        } else if ((is_eval || is_patch) && !try_admit_locked()) {
            // The admission bound applies to evals and patches only:
            // instance.load is control plane and must never be
            // `overloaded`.
            overloaded = true;
        } else {
            QueuedEval queued;
            queued.batch_key = batch_key_of(request);
            queued.dedup_key = dedup_key_of(request);
            if (is_patch) {
                queued.dedup_key +=
                    '\x1f' + std::to_string(patch_sequence.fetch_add(
                                 1, std::memory_order_relaxed));
            }
            queued.request = std::move(request);
            queued.conn = conn;
            conn->add_inflight();
            queue_.push_back(std::move(queued));
            set_queue_depth_locked();
            if (is_eval || is_patch) registry.counter("serve.admitted").add(1);
        }
    }
    if (shutting_down) {
        conn->send(render_error(request.id, ErrorCode::ShuttingDown,
                                "server is draining"));
        return;
    }
    if (run_inline) {
        conn->send(router_.handle(request));
        return;
    }
    if (overloaded) {
        registry.counter("serve.rejected_overload").add(1);
        conn->send(render_error(request.id, ErrorCode::Overloaded,
                                "admission queue full (capacity " +
                                    std::to_string(config_.queue_capacity) +
                                    "); retry later"));
        return;
    }
    queue_cv_.notify_one();
}

void Server::dispatcher_loop() {
    while (true) {
        std::vector<QueuedEval> batch;
        {
            std::unique_lock<std::mutex> lock(queue_mutex_);
            queue_cv_.wait(lock, [this] { return stop_dispatcher_ || !queue_.empty(); });
            if (queue_.empty()) {
                if (stop_dispatcher_) break;
                continue;
            }
            batch.push_back(std::move(queue_.front()));
            queue_.pop_front();
            // Coalesce queued evals on the same cached instance into this
            // pass (order across different instances is not preserved —
            // responses are id-matched, so clients do not care).
            if (!batch.front().batch_key.empty()) {
                for (auto it = queue_.begin();
                     it != queue_.end() && batch.size() < config_.batch_max;) {
                    if (it->batch_key == batch.front().batch_key) {
                        batch.push_back(std::move(*it));
                        it = queue_.erase(it);
                    } else {
                        ++it;
                    }
                }
            }
            dispatcher_busy_ = true;
            set_queue_depth_locked();
        }

        execute_batch(batch);

        {
            std::lock_guard<std::mutex> lock(queue_mutex_);
            dispatcher_busy_ = false;
        }
        idle_cv_.notify_all();
    }
    idle_cv_.notify_all();
}

void Server::execute_batch(std::vector<QueuedEval>& batch) {
    auto& registry = support::MetricsRegistry::global();
    registry.counter("serve.batches").add(1);
    if (batch.size() > 1) {
        registry.counter("serve.batched_evals").add(batch.size());
    }
    // Coalescing effectiveness: distribution of same-instance batch
    // sizes the dispatcher actually formed (1 = no coalescing happened).
    registry.histogram("dispatch.batch_size")
        .record(static_cast<double>(batch.size()));

    // Identical requests are computed once; every further waiter gets the
    // shared outcome rendered against its own id.  This is the batching
    // payoff: N clients polling the same (instance, mechanism, seed)
    // share one replication sweep on the pool.
    std::unordered_map<std::string, Router::Outcome> computed;
    for (QueuedEval& item : batch) {
        const bool is_eval = item.request.method != "instance.load";
        const auto now = std::chrono::steady_clock::now();
        if (is_eval && item.request.expired(now)) {
            registry.counter("serve.rejected_deadline").add(1);
            item.conn->send(render_error(item.request.id, ErrorCode::DeadlineExceeded,
                                         "deadline expired in the queue"));
            item.conn->finish_inflight();
            continue;
        }
        const auto found = computed.find(item.dedup_key);
        const bool shared = found != computed.end();
        if (shared) registry.counter("serve.dedup_shared").add(1);
        const Router::Outcome& outcome =
            shared ? found->second
                   : computed.emplace(item.dedup_key, router_.execute(item.request))
                         .first->second;
        if (is_eval && outcome.ok &&
            item.request.expired(std::chrono::steady_clock::now())) {
            registry.counter("serve.rejected_deadline").add(1);
            item.conn->send(render_error(item.request.id, ErrorCode::DeadlineExceeded,
                                         "deadline expired during execution"));
            item.conn->finish_inflight();
            continue;
        }
        item.conn->send(Router::render(item.request.id, outcome));
        item.conn->finish_inflight();
    }
}

std::string Server::handle_line(const std::string& line) {
    auto& registry = support::MetricsRegistry::global();
    Request request;
    try {
        request = parse_with_default_deadline(line);
    } catch (const ProtocolError& e) {
        registry.counter("serve.errors").add(1);
        return render_error(id_of_line(line), e.code(), e.what());
    }

    if (request.method == "eval" || request.method == "instance.patch") {
        if (draining()) {
            return render_error(request.id, ErrorCode::ShuttingDown,
                                "server is draining");
        }
        std::size_t depth = 0;
        {
            std::lock_guard<std::mutex> lock(queue_mutex_);
            depth = queue_.size();
        }
        if (depth >= config_.queue_capacity) {
            registry.counter("serve.rejected_overload").add(1);
            return render_error(request.id, ErrorCode::Overloaded,
                                "admission queue full (capacity " +
                                    std::to_string(config_.queue_capacity) +
                                    "); retry later");
        }
        registry.counter("serve.admitted").add(1);
    }
    if (request.method == "metrics") refresh_loop_gauges();
    return router_.handle(request);
}

}  // namespace ld::serve
