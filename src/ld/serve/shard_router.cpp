#include "ld/serve/shard_router.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

#include "ld/serve/instance_cache.hpp"
#include "support/metrics.hpp"
#include "support/signal_drain.hpp"

namespace ld::serve {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t fnv1a(const std::string& text) {
    std::uint64_t hash = kFnvOffset;
    for (const unsigned char byte : text) {
        hash ^= byte;
        hash *= kFnvPrime;
    }
    return hash;
}

bool all_digits(const std::string& text) {
    if (text.empty()) return false;
    return std::all_of(text.begin(), text.end(),
                       [](unsigned char c) { return std::isdigit(c) != 0; });
}

std::uint16_t parse_port(const std::string& text, const std::string& spec) {
    if (!all_digits(text)) {
        throw support::net::NetError("route: bad backend port in '" + spec + "'");
    }
    const unsigned long port = std::stoul(text);
    if (port == 0 || port > 65'535) {
        throw support::net::NetError("route: backend port out of range in '" + spec + "'");
    }
    return static_cast<std::uint16_t>(port);
}

}  // namespace

BackendSpec parse_backend_spec(const std::string& spec) {
    BackendSpec backend;
    if (spec.rfind("unix:", 0) == 0) {
        backend.unix_socket = spec.substr(5);
        if (backend.unix_socket.empty()) {
            throw support::net::NetError("route: empty unix path in '" + spec + "'");
        }
    } else if (spec.rfind("tcp:", 0) == 0) {
        backend.tcp_port = parse_port(spec.substr(4), spec);
    } else if (all_digits(spec)) {
        backend.tcp_port = parse_port(spec, spec);
    } else if (!spec.empty()) {
        backend.unix_socket = spec;  // bare path
    } else {
        throw support::net::NetError("route: empty backend spec");
    }
    backend.display = backend.unix_socket.empty()
                          ? "tcp:" + std::to_string(backend.tcp_port)
                          : "unix:" + backend.unix_socket;
    return backend;
}

std::size_t ShardRouter::pick_backend(const std::string& key,
                                      const std::vector<bool>& routable) {
    const std::size_t n = routable.size();
    if (n == 0) return 0;
    const std::size_t home = static_cast<std::size_t>(fnv1a(key) % n);
    for (std::size_t offset = 0; offset < n; ++offset) {
        const std::size_t index = (home + offset) % n;
        if (routable[index]) return index;
    }
    return n;
}

std::string ShardRouter::routing_key_of(const Request& request) {
    if (request.params.is_object()) {
        const json::Value* instance = request.params.find("instance");
        if (instance && instance->is_string()) return instance->as_string();
        if (request.method == "instance.load") {
            // Compute the fingerprint the backend will compute — the
            // cache key is deterministic, so the router needs no model
            // state to know where the instance lives.
            try {
                const json::Value& params = request.params;
                const std::string graph = params.at("graph").as_string();
                const std::string competencies = params.at("competencies").as_string();
                const auto n = static_cast<std::size_t>(params.at("n").as_number());
                const double alpha = params.at("alpha").as_number();
                std::uint64_t seed = 1;
                if (const json::Value* s = params.find("seed")) {
                    seed = static_cast<std::uint64_t>(s->as_number());
                }
                return InstanceCache::fingerprint(graph, competencies, n, alpha, seed);
            } catch (const std::exception&) {
                // Malformed load: any stable key will do — the backend
                // reports the real bad_request.
            }
        }
    }
    return json::dump(request.params);
}

ShardRouter::ShardRouter(ShardRouterConfig config) : config_(std::move(config)) {
    for (const BackendSpec& spec : config_.backends) {
        auto backend = std::make_unique<Backend>();
        backend->spec = spec;
        backends_.push_back(std::move(backend));
    }
}

ShardRouter::~ShardRouter() {
    if (started_ && !drained_) {
        request_drain();
        wait();
    }
}

void ShardRouter::start() {
    if (started_) return;
    if (backends_.empty()) {
        throw support::net::NetError("route: no backends configured");
    }
    if (config_.unix_socket.empty() && !config_.tcp_port.has_value()) {
        throw support::net::NetError("serve: no listener configured");
    }

    FrontConfig front_config;
    front_config.unix_socket = config_.unix_socket;
    front_config.tcp_port = config_.tcp_port;
    front_config.write_timeout = config_.write_timeout;
    front_config.handshake = render_handshake();
    if (config_.drain_on_signal) {
        front_config.signal_wake_fd = support::SignalDrain::wake_fd();
    }
    front_ = std::make_unique<EventFront>(
        std::move(front_config),
        [this](const std::shared_ptr<Conn>& conn, const std::string& line) {
            on_client_line(conn, line);
        },
        [this] {
            if (support::SignalDrain::requested()) request_drain();
        });

    // Best-effort initial connects before we accept clients, so the
    // first request does not race the first health pass.
    for (std::size_t i = 0; i < backends_.size(); ++i) try_connect(i);
    refresh_backend_gauge();

    front_->start();
    tcp_port_ = front_->tcp_port();
    started_ = true;
    maintenance_ = std::thread([this] { maintenance_loop(); });
}

void ShardRouter::request_drain() {
    {
        std::lock_guard<std::mutex> lock(drain_mutex_);
        if (drain_requested_) return;
        drain_requested_ = true;
    }
    draining_.store(true, std::memory_order_relaxed);
    drain_cv_.notify_all();
}

int ShardRouter::wait() {
    {
        std::unique_lock<std::mutex> lock(drain_mutex_);
        drain_cv_.wait(lock, [this] { return drain_requested_; });
        if (drained_) return 0;
        drained_ = true;
    }
    do_drain();
    return 0;
}

void ShardRouter::do_drain() {
    auto& registry = support::MetricsRegistry::global();

    // 1. Stop accepting and settle: every client line that was readable
    //    when the drain began has now been forwarded or rejected.
    front_->stop_accepting();
    front_->settle_inputs();

    // 2. Bounded wait for the backends to answer everything in flight.
    //    Failover stays live: a backend dying here still replays onto
    //    the survivors.
    const auto bound = std::max<std::chrono::milliseconds>(
        config_.write_timeout * 2, std::chrono::milliseconds(10'000));
    const auto deadline = std::chrono::steady_clock::now() + bound;
    while (total_pending() > 0 && std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }

    // 3. Teardown: no more failover hops — orphans now fail with
    //    shutting_down.  Unblock every reader and join it; each reader
    //    fails its backend's leftovers on the way out.
    replay_enabled_.store(false, std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lock(maintenance_mutex_);
        stop_maintenance_ = true;
    }
    maintenance_cv_.notify_all();
    if (maintenance_.joinable()) maintenance_.join();
    for (const auto& backend : backends_) {
        std::lock_guard<std::mutex> lock(backend->mutex);
        backend->connected.store(false, std::memory_order_relaxed);
        if (backend->socket.valid()) backend->socket.shutdown_both();
    }
    for (const auto& backend : backends_) {
        if (backend->reader.joinable()) backend->reader.join();
    }

    // 4. Deliver buffered client responses, close clients, stop the loop.
    front_->flush_all(config_.write_timeout.count() > 0
                          ? config_.write_timeout + std::chrono::milliseconds(1'000)
                          : std::chrono::milliseconds(10'000));
    front_->close_all();
    front_->shutdown();

    // 5. Flush metrics.
    registry.counter("route.drains").add(1);
    if (!config_.metrics_out.empty()) {
        std::ofstream out(config_.metrics_out);
        if (out) support::write_metrics_json(out, registry.snapshot());
    }
}

void ShardRouter::on_client_line(const std::shared_ptr<Conn>& conn,
                                 const std::string& line) {
    auto& registry = support::MetricsRegistry::global();
    Request request;
    try {
        request = parse_request(line, std::chrono::steady_clock::now());
    } catch (const ProtocolError& e) {
        registry.counter("serve.errors").add(1);
        conn->send(render_error(id_of_line(line), e.code(), e.what()));
        return;
    }

    // Router-local control plane: health and metrics describe the
    // router itself; shutdown drains it.  Everything else is forwarded.
    if (request.method == "health") {
        conn->send(render_router_health(request.id));
        return;
    }
    if (request.method == "metrics") {
        registry.gauge("loop.fds").set(
            static_cast<std::int64_t>(front_->loop_fd_count()));
        registry.gauge("loop.conns").set(
            static_cast<std::int64_t>(front_->connection_count()));
        std::ostringstream os;
        support::write_metrics_json(os, registry.snapshot());
        json::Object result;
        result.emplace("report", json::parse(os.str()));
        conn->send(render_result(request.id, std::move(result)));
        return;
    }
    if (request.method == "shutdown") {
        json::Object result;
        result.emplace("draining", json::Value(true));
        conn->send(render_result(request.id, std::move(result)));
        request_drain();
        return;
    }

    if (draining()) {
        conn->send(render_error(request.id, ErrorCode::ShuttingDown,
                                "router is draining"));
        return;
    }
    forward_request(conn, std::move(request));
}

void ShardRouter::forward_request(const std::shared_ptr<Conn>& conn,
                                  Request request) {
    auto& registry = support::MetricsRegistry::global();
    const std::string key = routing_key_of(request);

    if (request.method == "instance.load" || request.method == "instance.patch") {
        // Broadcast: the home backend answers the client, every other
        // routable backend warms the same instance so a later failover
        // replay can never miss the cache.  instance.patch broadcasts
        // for the same reason: every routable backend advances its live
        // session, so a failover lands on a backend whose delegation
        // state already matches (patch ops are absolute assignments —
        // idempotent under the at-least-once delivery this creates; only
        // the epoch can run ahead, which expect_epoch detects).
        const std::vector<bool> routable = routable_snapshot();
        const std::size_t home = pick_backend(key, routable);
        if (home < routable.size()) {
            for (std::size_t i = 0; i < backends_.size(); ++i) {
                if (i == home || !routable[i]) continue;
                Pending copy;
                copy.client = nullptr;  // absorbed
                copy.method = request.method;
                copy.params = request.params;
                copy.routing_key = key;
                if (try_send(i, std::move(copy))) {
                    registry.counter("route.broadcast").add(1);
                }
            }
        }
    }

    Pending pending;
    pending.client = conn;
    pending.client_id = request.id;
    pending.method = request.method;
    pending.params = request.params;
    pending.routing_key = key;
    pending.deadline = request.deadline;
    conn->add_inflight();
    dispatch_forward(std::move(pending));
}

void ShardRouter::dispatch_forward(Pending pending) {
    auto& registry = support::MetricsRegistry::global();
    const int max_attempts = static_cast<int>(backends_.size());
    while (pending.attempts < max_attempts) {
        const std::size_t index =
            pick_backend(pending.routing_key, routable_snapshot());
        if (index >= backends_.size()) break;  // nothing routable at all
        if (pending.attempts > 0) registry.counter("route.retries").add(1);
        pending.attempts += 1;
        // try_send consumes pending on success; keep a rebuildable copy.
        Pending attempt = pending;
        if (try_send(index, std::move(attempt))) {
            registry.counter("route.forwarded").add(1);
            return;
        }
        // try_send marked that backend down; the next pick scans past it.
    }
    registry.counter("route.no_backend").add(1);
    fail_pending(pending, ErrorCode::Overloaded,
                 "no healthy backend available; retry later");
}

bool ShardRouter::try_send(std::size_t index, Pending pending) {
    Backend& backend = *backends_[index];
    const std::uint64_t internal =
        next_internal_id_.fetch_add(1, std::memory_order_relaxed);

    json::Object forward;
    forward.emplace("id", json::Value(static_cast<double>(internal)));
    forward.emplace("method", json::Value(pending.method));
    if (!pending.params.is_null()) forward.emplace("params", pending.params);
    if (pending.deadline.has_value()) {
        const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
            *pending.deadline - std::chrono::steady_clock::now());
        // An already-expired deadline still forwards (as 1ms): the
        // backend owns deadline semantics and reports the expiry.
        forward.emplace("deadline_ms",
                        json::Value(static_cast<double>(
                            std::max<std::int64_t>(remaining.count(), 1))));
    }
    const std::string line = json::dump(json::Value(std::move(forward)));

    std::lock_guard<std::mutex> lock(backend.mutex);
    if (!backend.connected.load(std::memory_order_relaxed)) return false;
    try {
        const int timeout_ms = config_.write_timeout.count() > 0
                                   ? static_cast<int>(config_.write_timeout.count())
                                   : -1;
        support::net::write_line(backend.socket, line, timeout_ms);
    } catch (const support::net::NetError&) {
        // Send failed: mark the backend down and unblock its reader,
        // which replays the rest of its pending onto the survivors.
        backend.connected.store(false, std::memory_order_relaxed);
        backend.socket.shutdown_both();
        return false;
    }
    backend.pending.emplace(internal, std::move(pending));
    return true;
}

void ShardRouter::reader_loop(std::size_t index) {
    Backend& backend = *backends_[index];
    bool saw_handshake = false;
    try {
        support::net::LineReader reader(backend.socket);
        std::string line;
        while (reader.read_line(line)) {
            handle_backend_line(index, line, saw_handshake);
            if (!backend.connected.load(std::memory_order_relaxed)) break;
        }
    } catch (const std::exception&) {
        // Connection dropped mid-read; treated as EOF below.
    }
    on_backend_down(index);
}

void ShardRouter::handle_backend_line(std::size_t index, const std::string& line,
                                      bool& saw_handshake) {
    Backend& backend = *backends_[index];
    json::Value value;
    try {
        value = json::parse(line);
    } catch (const std::exception&) {
        return;  // not ours to diagnose; ignore the line
    }
    if (!value.is_object()) return;

    if (!saw_handshake && value.contains("schema")) {
        saw_handshake = true;
        const json::Value& schema = value.at("schema");
        if (!schema.is_string() || schema.as_string() != kSchema) {
            // Whatever this is, it does not speak liquidd.rpc.v1.
            backend.connected.store(false, std::memory_order_relaxed);
        }
        return;
    }

    const json::Value* id = value.find("id");
    if (!id) return;

    if (id->is_string() && id->as_string().rfind("hc", 0) == 0) {
        // Health-probe ack.  "draining" routes new work away while this
        // backend's in-flight responses keep streaming back.
        bool remote_draining = false;
        if (const json::Value* result = value.find("result")) {
            if (result->is_object()) {
                if (const json::Value* status = result->find("status")) {
                    remote_draining =
                        status->is_string() && status->as_string() == "draining";
                }
            }
        }
        {
            std::lock_guard<std::mutex> lock(backend.mutex);
            backend.awaiting_probe = false;
        }
        backend.remote_draining.store(remote_draining, std::memory_order_relaxed);
        refresh_backend_gauge();
        return;
    }

    if (!id->is_number()) return;
    const auto internal = static_cast<std::uint64_t>(id->as_number());
    Pending pending;
    {
        std::lock_guard<std::mutex> lock(backend.mutex);
        const auto found = backend.pending.find(internal);
        if (found == backend.pending.end()) return;  // duplicate/stale
        pending = std::move(found->second);
        backend.pending.erase(found);
    }
    if (!pending.client) return;  // absorbed broadcast copy

    // Rewrite the backend's internal id back to the client's own.
    json::Object response = value.as_object();
    response.insert_or_assign("id", pending.client_id);
    pending.client->send(json::dump(json::Value(std::move(response))));
    pending.client->finish_inflight();
}

void ShardRouter::on_backend_down(std::size_t index) {
    Backend& backend = *backends_[index];
    std::unordered_map<std::uint64_t, Pending> orphans;
    {
        std::lock_guard<std::mutex> lock(backend.mutex);
        backend.connected.store(false, std::memory_order_relaxed);
        backend.remote_draining.store(false, std::memory_order_relaxed);
        backend.awaiting_probe = false;
        backend.socket.close();
        orphans.swap(backend.pending);
    }
    refresh_backend_gauge();

    auto& registry = support::MetricsRegistry::global();
    const bool replay = replay_enabled_.load(std::memory_order_relaxed);
    for (auto& entry : orphans) {
        Pending& pending = entry.second;
        if (!pending.client) continue;  // absorbed broadcast copy: drop
        if (replay) {
            registry.counter("route.failover_replayed").add(1);
            dispatch_forward(std::move(pending));
        } else {
            fail_pending(pending, ErrorCode::ShuttingDown, "router is draining");
        }
    }
}

void ShardRouter::fail_pending(Pending& pending, ErrorCode code,
                               const std::string& message) {
    if (!pending.client) return;
    pending.client->send(render_error(pending.client_id, code, message));
    pending.client->finish_inflight();
}

bool ShardRouter::try_connect(std::size_t index) {
    Backend& backend = *backends_[index];
    if (backend.connected.load(std::memory_order_relaxed)) return true;
    // The previous reader (if any) has observed the disconnect and is
    // exiting; reap it before handing the Backend a fresh socket.
    if (backend.reader.joinable()) backend.reader.join();

    support::net::Socket socket;
    try {
        socket = backend.spec.unix_socket.empty()
                     ? support::net::connect_tcp_loopback(backend.spec.tcp_port)
                     : support::net::connect_unix(backend.spec.unix_socket);
    } catch (const support::net::NetError&) {
        return false;
    }
    {
        std::lock_guard<std::mutex> lock(backend.mutex);
        backend.socket = std::move(socket);
        // Optimistically routable on connect — waiting for the first
        // health ack would open a no-backend window at startup.
        backend.connected.store(true, std::memory_order_relaxed);
        backend.remote_draining.store(false, std::memory_order_relaxed);
        backend.awaiting_probe = false;
    }
    backend.reader = std::thread([this, index] { reader_loop(index); });
    support::MetricsRegistry::global().counter("route.connects").add(1);
    refresh_backend_gauge();
    return true;
}

void ShardRouter::maintenance_loop() {
    auto& registry = support::MetricsRegistry::global();
    while (true) {
        {
            std::unique_lock<std::mutex> lock(maintenance_mutex_);
            maintenance_cv_.wait_for(lock, config_.health_interval,
                                     [this] { return stop_maintenance_; });
            if (stop_maintenance_) return;
        }
        const auto now = std::chrono::steady_clock::now();
        for (std::size_t i = 0; i < backends_.size(); ++i) {
            Backend& backend = *backends_[i];
            if (!backend.connected.load(std::memory_order_relaxed)) {
                try_connect(i);
                continue;
            }
            std::lock_guard<std::mutex> lock(backend.mutex);
            if (!backend.connected.load(std::memory_order_relaxed)) continue;
            if (backend.awaiting_probe && now >= backend.probe_deadline) {
                // Probe went unanswered: the backend is wedged or gone.
                // Unblock the reader; it replays this backend's pending.
                backend.connected.store(false, std::memory_order_relaxed);
                backend.socket.shutdown_both();
                continue;
            }
            if (backend.awaiting_probe) continue;
            const std::uint64_t probe_id =
                next_probe_id_.fetch_add(1, std::memory_order_relaxed);
            const std::string probe = "{\"id\": \"hc" + std::to_string(probe_id) +
                                      "\", \"method\": \"health\"}";
            try {
                support::net::write_line(backend.socket, probe, 1'000);
                backend.awaiting_probe = true;
                backend.probe_deadline = now + 3 * config_.health_interval;
                registry.counter("route.health_checks").add(1);
            } catch (const support::net::NetError&) {
                backend.connected.store(false, std::memory_order_relaxed);
                backend.socket.shutdown_both();
            }
        }
        refresh_backend_gauge();
    }
}

std::vector<bool> ShardRouter::routable_snapshot() const {
    std::vector<bool> routable(backends_.size());
    for (std::size_t i = 0; i < backends_.size(); ++i) {
        routable[i] = backends_[i]->connected.load(std::memory_order_relaxed) &&
                      !backends_[i]->remote_draining.load(std::memory_order_relaxed);
    }
    return routable;
}

void ShardRouter::refresh_backend_gauge() {
    const std::vector<bool> routable = routable_snapshot();
    const auto healthy =
        static_cast<std::int64_t>(std::count(routable.begin(), routable.end(), true));
    support::MetricsRegistry::global().gauge("route.healthy_backends").set(healthy);
}

std::size_t ShardRouter::total_pending() {
    std::size_t total = 0;
    for (const auto& backend : backends_) {
        std::lock_guard<std::mutex> lock(backend->mutex);
        total += backend->pending.size();
    }
    return total;
}

std::string ShardRouter::render_router_health(const json::Value& id) {
    json::Object result;
    result.emplace("status",
                   json::Value(std::string(draining() ? "draining" : "ok")));
    result.emplace("router", json::Value(true));
    result.emplace("connections",
                   json::Value(static_cast<double>(front_->connection_count())));
    json::Array reports;
    for (const auto& backend : backends_) {
        json::Object report;
        report.emplace("backend", json::Value(backend->spec.display));
        report.emplace(
            "connected",
            json::Value(backend->connected.load(std::memory_order_relaxed)));
        report.emplace(
            "draining",
            json::Value(backend->remote_draining.load(std::memory_order_relaxed)));
        std::size_t in_flight = 0;
        {
            std::lock_guard<std::mutex> lock(backend->mutex);
            in_flight = backend->pending.size();
        }
        report.emplace("pending", json::Value(static_cast<double>(in_flight)));
        reports.emplace_back(std::move(report));
    }
    result.emplace("backends", json::Value(std::move(reports)));
    return render_result(id, std::move(result));
}

}  // namespace ld::serve
