// `liquidd serve --route`: a shard-routing front that speaks
// liquidd.rpc.v1 to clients and fans requests out across N backend
// liquidd servers, keyed by instance content-fingerprint.
//
// Routing.  The InstanceCache key is deterministic — the same
// (graph, competencies, n, alpha, seed) tuple fingerprints identically
// in every process — so the router can compute it locally without
// realizing anything: `eval`/`instance.info` route by their `instance`
// fingerprint, `instance.load` by the fingerprint its params imply.
// The key is FNV-1a-hashed onto a home backend; unroutable backends
// (down, or draining per their own health reports) are skipped by
// scanning forward, so affinity is stable while everyone is up and
// degrades to the next shard, not to failure, when one is not.
//
// `instance.load` is *broadcast* to every routable backend (the home
// backend's response answers the client; the other copies are
// absorbed).  That makes failover safe: when a backend dies mid-run and
// its in-flight evals are replayed onto the next shard, the instance
// they reference is already warm there — never `not_found`.
//
// Health.  A maintenance thread probes every backend each
// health_interval with a `health` request (ids prefixed "hc" so they
// can never collide with the numeric ids used for forwarded requests).
// A missed probe deadline or a failed send marks the backend down and
// its reader replays that backend's in-flight requests elsewhere; a
// `"status": "draining"` report routes new work away while in-flight
// responses keep streaming back.
//
// Threading: the EventFront loop thread parses client lines and
// forwards them (backend writes are short, mutex-serialized,
// write_timeout-bounded); one reader thread per backend demultiplexes
// responses back to clients by rewriting ids; the maintenance thread
// reconnects and probes.

#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "ld/serve/event_front.hpp"
#include "ld/serve/protocol.hpp"
#include "support/net.hpp"

namespace ld::serve {

/// One `--route` entry: "unix:/path", "tcp:PORT", a bare socket path, or
/// a bare port number.
struct BackendSpec {
    std::string unix_socket;      ///< "" when TCP
    std::uint16_t tcp_port = 0;   ///< 0 when Unix
    std::string display;          ///< normalized label for health/logs
};

/// Parse one backend spec; throws support::net::NetError on nonsense.
BackendSpec parse_backend_spec(const std::string& spec);

struct ShardRouterConfig {
    /// Client-facing listeners, as in ServerConfig.
    std::string unix_socket;
    std::optional<std::uint16_t> tcp_port;
    /// The backend shards, in hash-ring order (order matters: it is the
    /// affinity layout).
    std::vector<BackendSpec> backends;
    /// Health-probe cadence; a probe unanswered for 3 intervals marks
    /// the backend down.
    std::chrono::milliseconds health_interval{1'000};
    /// Bound on client response writes AND backend forward writes.
    std::chrono::milliseconds write_timeout{5'000};
    /// Drain on SIGINT/SIGTERM via support::SignalDrain.
    bool drain_on_signal = false;
    /// Flush a liquidd.metrics.v1 report here on drain ("" = none).
    std::string metrics_out;
};

class ShardRouter {
public:
    explicit ShardRouter(ShardRouterConfig config);
    ~ShardRouter();

    ShardRouter(const ShardRouter&) = delete;
    ShardRouter& operator=(const ShardRouter&) = delete;

    /// Connect backends (best effort — the maintenance thread retries),
    /// bind listeners, start forwarding.
    void start();

    /// Block until a drain is requested, then tear down: wait (bounded)
    /// for in-flight responses, close backends and clients, flush
    /// metrics.  Returns the process exit code (0).
    int wait();

    /// Trigger a graceful drain (thread-safe; idempotent).
    void request_drain();

    bool draining() const noexcept {
        return draining_.load(std::memory_order_relaxed);
    }

    std::uint16_t tcp_port() const noexcept { return tcp_port_; }

    /// Shard selection: FNV-1a(key) picks the home backend; scan forward
    /// to the first routable one.  Returns routable.size() when none is.
    /// Static and pure so affinity/failover are unit-testable.
    static std::size_t pick_backend(const std::string& key,
                                    const std::vector<bool>& routable);

    /// The routing key for a request: its instance fingerprint when it
    /// names or implies one, else the canonical params rendering.
    static std::string routing_key_of(const Request& request);

private:
    /// One forwarded request awaiting its backend response.
    struct Pending {
        std::shared_ptr<Conn> client;  ///< null: absorbed broadcast copy
        json::Value client_id;
        std::string method;
        json::Value params;
        std::string routing_key;
        std::optional<std::chrono::steady_clock::time_point> deadline;
        int attempts = 0;
    };

    struct Backend {
        BackendSpec spec;
        std::mutex mutex;  ///< guards socket writes, pending, probe state
        support::net::Socket socket;
        std::thread reader;
        std::atomic<bool> connected{false};
        std::atomic<bool> remote_draining{false};
        std::unordered_map<std::uint64_t, Pending> pending;
        bool awaiting_probe = false;
        std::chrono::steady_clock::time_point probe_deadline{};
    };

    void on_client_line(const std::shared_ptr<Conn>& conn, const std::string& line);
    void forward_request(const std::shared_ptr<Conn>& conn, Request request);
    /// Route + send with retry across routable backends.  On success the
    /// request is pending on some backend; on failure the client (when
    /// present) has been answered with an error.  Owns finish_inflight
    /// on every failure path.
    void dispatch_forward(Pending pending);
    bool try_send(std::size_t index, Pending pending);
    void reader_loop(std::size_t index);
    void handle_backend_line(std::size_t index, const std::string& line,
                             bool& saw_handshake);
    void on_backend_down(std::size_t index);
    void fail_pending(Pending& pending, ErrorCode code, const std::string& message);
    bool try_connect(std::size_t index);
    void maintenance_loop();
    std::vector<bool> routable_snapshot() const;
    void refresh_backend_gauge();
    std::size_t total_pending();
    std::string render_router_health(const json::Value& id);
    void do_drain();

    ShardRouterConfig config_;
    std::vector<std::unique_ptr<Backend>> backends_;
    std::unique_ptr<EventFront> front_;
    std::uint16_t tcp_port_ = 0;

    std::atomic<std::uint64_t> next_internal_id_{1};
    std::atomic<std::uint64_t> next_probe_id_{1};
    /// Cleared during drain teardown: orphaned requests then fail with
    /// `shutting_down` instead of hopping to another backend.
    std::atomic<bool> replay_enabled_{true};

    std::thread maintenance_;
    std::mutex maintenance_mutex_;
    std::condition_variable maintenance_cv_;
    bool stop_maintenance_ = false;

    std::atomic<bool> draining_{false};
    std::mutex drain_mutex_;
    std::condition_variable drain_cv_;
    bool drain_requested_ = false;
    bool started_ = false;
    bool drained_ = false;
};

}  // namespace ld::serve
