#include "ld/serve/event_front.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <future>
#include <stdexcept>
#include <utility>
#include <vector>

#include <fcntl.h>
#include <unistd.h>

#include "support/metrics.hpp"

namespace ld::serve {

namespace {

using support::net::kEventError;
using support::net::kEventHangup;
using support::net::kEventRdHangup;
using support::net::kEventRead;
using support::net::kEventWrite;

constexpr std::chrono::steady_clock::time_point kNoStall{};

}  // namespace

// Conn ---------------------------------------------------------------------

Conn::Conn(std::shared_ptr<support::net::EventLoop> loop, EventFront* front,
           support::net::Socket socket)
    : loop_(std::move(loop)), front_(front), socket_(std::move(socket)) {}

void Conn::send(const std::string& line) noexcept {
    if (dead_.load(std::memory_order_relaxed)) return;
    {
        std::lock_guard<std::mutex> lock(out_mutex_);
        out_buffer_.append(line);
        out_buffer_.push_back('\n');
    }
    if (loop_->on_loop_thread()) {
        flush();
        return;
    }
    // Coalesce cross-thread flush requests: one queued flush drains
    // every line appended before it runs.
    if (!flush_queued_.exchange(true, std::memory_order_acq_rel)) {
        auto self = shared_from_this();
        loop_->post([self] {
            self->flush_queued_.store(false, std::memory_order_release);
            self->flush();
        });
    }
}

void Conn::finish_inflight() noexcept {
    if (inflight_.fetch_sub(1, std::memory_order_acq_rel) != 1) return;
    if (dead_.load(std::memory_order_relaxed)) return;
    // Last response for a possibly half-closed peer: let the loop decide
    // whether the connection can now be torn down.
    auto self = shared_from_this();
    loop_->post([self] { self->maybe_close(); });
}

void Conn::flush() {
    if (!socket_.valid() || dead_.load(std::memory_order_relaxed)) return;
    bool fatal = false;
    bool emptied = false;
    std::size_t wrote = 0;
    {
        std::lock_guard<std::mutex> lock(out_mutex_);
        while (out_offset_ < out_buffer_.size()) {
            const std::string_view rest(out_buffer_.data() + out_offset_,
                                        out_buffer_.size() - out_offset_);
            std::size_t accepted = 0;
            try {
                accepted = socket_.write_nonblocking(rest);
            } catch (const support::net::NetError&) {
                fatal = true;
                break;
            }
            if (accepted == 0) break;  // socket buffer full
            wrote += accepted;
            out_offset_ += accepted;
        }
        if (!fatal && out_offset_ == out_buffer_.size()) {
            out_buffer_.clear();
            out_offset_ = 0;
            emptied = true;
        }
    }
    if (fatal) {
        dead_.store(true, std::memory_order_relaxed);
        if (front_) front_->close_conn(shared_from_this());
        return;
    }
    const std::uint32_t read_bits = read_closed_ ? 0 : kEventRead;
    if (emptied) {
        stall_since_ = kNoStall;
        if (want_write_) {
            want_write_ = false;
            loop_->set_interest(socket_.fd(), read_bits);
        }
        maybe_close();
        return;
    }
    // Bytes remain: (re-)arm writability and anchor the stall clock at
    // the last moment the kernel accepted anything.
    if (wrote > 0 || stall_since_ == kNoStall) {
        stall_since_ = std::chrono::steady_clock::now();
    }
    if (!want_write_) {
        want_write_ = true;
        loop_->set_interest(socket_.fd(), read_bits | kEventWrite);
    }
}

void Conn::maybe_close() {
    if (!socket_.valid() || !read_closed_) return;
    if (inflight_.load(std::memory_order_acquire) != 0) return;
    {
        std::lock_guard<std::mutex> lock(out_mutex_);
        if (out_offset_ < out_buffer_.size()) return;
    }
    if (front_) front_->close_conn(shared_from_this());
}

// EventFront ---------------------------------------------------------------

EventFront::EventFront(FrontConfig config, LineHandler on_line,
                       std::function<void()> on_drain_signal)
    : config_(std::move(config)),
      on_line_(std::move(on_line)),
      on_drain_signal_(std::move(on_drain_signal)),
      loop_(std::make_shared<support::net::EventLoop>()) {
    // The tick drives write-stall sweeps, so it must fire a few times
    // within one write_timeout to enforce the deadline with any accuracy.
    if (config_.write_timeout.count() > 0) {
        const auto quarter =
            std::chrono::milliseconds(std::max<std::int64_t>(config_.write_timeout.count() / 4, 10));
        if (quarter < config_.tick) config_.tick = quarter;
    }
}

EventFront::~EventFront() {
    shutdown();
    // Remaining Conn sockets close via RAII when conns_ is destroyed.
}

void EventFront::start() {
    if (started_) throw std::logic_error("EventFront::start called twice");
    started_ = true;

    if (!config_.unix_socket.empty()) {
        unix_listener_.emplace(support::net::Listener::unix_domain(config_.unix_socket));
        support::net::set_nonblocking(unix_listener_->fd());
    }
    if (config_.tcp_port.has_value()) {
        tcp_listener_.emplace(support::net::Listener::tcp_loopback(*config_.tcp_port));
        support::net::set_nonblocking(tcp_listener_->fd());
        tcp_port_ = tcp_listener_->port();
    }

    // The loop thread has not started yet, so registering here is safe.
    if (unix_listener_) {
        loop_->add_fd(unix_listener_->fd(), kEventRead,
                      [this](std::uint32_t) { handle_accept(*unix_listener_); });
    }
    if (tcp_listener_) {
        loop_->add_fd(tcp_listener_->fd(), kEventRead,
                      [this](std::uint32_t) { handle_accept(*tcp_listener_); });
    }
    if (config_.signal_wake_fd >= 0) {
        loop_->add_fd(config_.signal_wake_fd, kEventRead, [this](std::uint32_t) {
            // One-shot: deregister (never consume the byte — other
            // watchers may share the fd) and hand off to the owner.
            loop_->remove_fd(config_.signal_wake_fd);
            if (on_drain_signal_) on_drain_signal_();
        });
    }
    loop_->set_tick(config_.tick, [this] { on_tick(); });

    loop_thread_ = std::thread([this] { run_loop(); });
}

void EventFront::run_loop() {
    try {
        loop_->run();
    } catch (const std::exception& error) {
        // An epoll-layer failure here is unrecoverable for the serve
        // transport; surface it rather than dying silently.
        std::fprintf(stderr, "liquidd serve: event loop failed: %s\n", error.what());
    }
}

void EventFront::handle_accept(support::net::Listener& listener) {
    // Accept in bounded bursts; level-triggered epoll re-reports the
    // listener if a backlog remains.
    for (int burst = 0; burst < 64; ++burst) {
        if (!listener.valid()) return;
        bool exhausted = false;
        std::optional<support::net::Socket> client;
        try {
            client = listener.try_accept(&exhausted);
        } catch (const support::net::NetError&) {
            support::MetricsRegistry::global().counter("serve.accept_errors").add(1);
            return;  // transient accept failure; next readiness retries
        }
        if (!client.has_value()) {
            if (exhausted && !listeners_paused_) {
                // Out of descriptors: stop watching the listeners so the
                // loop does not spin on the connection it cannot accept;
                // a later tick re-arms them once connections have closed.
                listeners_paused_ = true;
                if (unix_listener_ && loop_->watches(unix_listener_->fd())) {
                    loop_->remove_fd(unix_listener_->fd());
                }
                if (tcp_listener_ && loop_->watches(tcp_listener_->fd())) {
                    loop_->remove_fd(tcp_listener_->fd());
                }
            }
            return;
        }
        if (!accepting_.load(std::memory_order_relaxed)) continue;  // draining: drop

        const int fd = client->fd();
        std::shared_ptr<Conn> conn(new Conn(loop_, this, std::move(*client)));
        conns_.emplace(fd, conn);
        conn_count_.fetch_add(1, std::memory_order_relaxed);
        if (config_.connections_gauge) {
            config_.connections_gauge->fetch_add(1, std::memory_order_relaxed);
        }
        support::MetricsRegistry::global().counter("serve.connections").add(1);
        loop_->add_fd(fd, kEventRead, [this, conn](std::uint32_t events) {
            on_conn_event(conn, events);
        });
        if (!config_.handshake.empty()) conn->send(config_.handshake);
    }
}

void EventFront::on_conn_event(const std::shared_ptr<Conn>& conn,
                               std::uint32_t events) {
    if (!conn->socket_.valid()) return;  // stale: closed earlier in this batch
    if (events & (kEventRead | kEventRdHangup | kEventHangup | kEventError)) {
        // Read first even on hangups: bytes the peer sent before closing
        // are still in the kernel buffer and may hold whole requests.
        read_pass(conn);
    }
    if (!conn->socket_.valid()) return;
    if (events & (kEventHangup | kEventError)) {
        // Full hangup — responses are undeliverable, drop immediately.
        conn->dead_.store(true, std::memory_order_relaxed);
        close_conn(conn);
        return;
    }
    if (events & kEventWrite) conn->flush();
}

void EventFront::read_pass(const std::shared_ptr<Conn>& conn) {
    char chunk[16 * 1024];
    // Bounded passes per wakeup so one firehose client cannot starve the
    // rest of the loop; leftovers are re-reported level-triggered.
    for (int pass = 0; pass < 4 && !conn->read_closed_; ++pass) {
        if (!conn->socket_.valid() || conn->dead()) return;
        std::optional<std::size_t> got;
        try {
            got = conn->socket_.read_nonblocking(chunk, sizeof chunk);
        } catch (const support::net::NetError&) {
            conn->dead_.store(true, std::memory_order_relaxed);
            close_conn(conn);
            return;
        }
        if (!got.has_value()) break;  // drained for now (EAGAIN)
        if (*got == 0) {              // orderly EOF: half-close
            conn->read_closed_ = true;
            break;
        }
        conn->in_buffer_.append(chunk, *got);
        std::size_t start = 0;
        std::size_t newline;
        while ((newline = conn->in_buffer_.find('\n', start)) != std::string::npos) {
            std::size_t end = newline;
            if (end > start && conn->in_buffer_[end - 1] == '\r') --end;
            const std::string line = conn->in_buffer_.substr(start, end - start);
            start = newline + 1;
            on_line_(conn, line);
            if (!conn->socket_.valid() || conn->dead()) return;
        }
        conn->in_buffer_.erase(0, start);
    }
    if (!conn->read_closed_) return;

    if (!conn->in_buffer_.empty()) {
        // Final unterminated line: honor it, matching LineReader.
        std::string line;
        line.swap(conn->in_buffer_);
        if (!line.empty() && line.back() == '\r') line.pop_back();
        on_line_(conn, line);
    }
    if (conn->socket_.valid() && !conn->dead()) {
        loop_->set_interest(conn->socket_.fd(),
                            conn->want_write_ ? kEventWrite : 0);
        conn->maybe_close();
    }
}

void EventFront::close_conn(const std::shared_ptr<Conn>& conn) {
    if (!conn->socket_.valid()) return;
    const int fd = conn->socket_.fd();
    conn->dead_.store(true, std::memory_order_relaxed);
    loop_->remove_fd(fd);
    conn->socket_.close();
    conns_.erase(fd);
    conn_count_.fetch_sub(1, std::memory_order_relaxed);
    if (config_.connections_gauge) {
        config_.connections_gauge->fetch_sub(1, std::memory_order_relaxed);
    }
}

void EventFront::on_tick() {
    if (listeners_paused_) {
        listeners_paused_ = false;
        if (accepting_.load(std::memory_order_relaxed)) {
            if (unix_listener_ && unix_listener_->valid() &&
                !loop_->watches(unix_listener_->fd())) {
                loop_->add_fd(unix_listener_->fd(), kEventRead,
                              [this](std::uint32_t) { handle_accept(*unix_listener_); });
            }
            if (tcp_listener_ && tcp_listener_->valid() &&
                !loop_->watches(tcp_listener_->fd())) {
                loop_->add_fd(tcp_listener_->fd(), kEventRead,
                              [this](std::uint32_t) { handle_accept(*tcp_listener_); });
            }
        }
    }

    if (config_.write_timeout.count() <= 0) return;
    const auto now = std::chrono::steady_clock::now();
    std::vector<std::shared_ptr<Conn>> stalled;
    for (const auto& entry : conns_) {
        const std::shared_ptr<Conn>& conn = entry.second;
        if (conn->stall_since_ == kNoStall) continue;
        bool pending = false;
        {
            std::lock_guard<std::mutex> lock(conn->out_mutex_);
            pending = conn->out_offset_ < conn->out_buffer_.size();
        }
        if (pending && now - conn->stall_since_ >= config_.write_timeout) {
            stalled.push_back(conn);
        }
    }
    for (const std::shared_ptr<Conn>& conn : stalled) {
        // The peer stopped reading: drop it rather than buffer forever.
        conn->dead_.store(true, std::memory_order_relaxed);
        close_conn(conn);
    }
}

void EventFront::post_and_wait(const std::function<void()>& fn) {
    if (!started_ || shut_down_ || !loop_thread_.joinable() ||
        loop_->on_loop_thread()) {
        fn();
        return;
    }
    std::promise<void> done;
    auto finished = done.get_future();
    loop_->post([&fn, &done] {
        fn();
        done.set_value();
    });
    finished.wait();
}

void EventFront::barrier() {
    post_and_wait([] {});
}

void EventFront::stop_accepting() {
    accepting_.store(false, std::memory_order_relaxed);
    post_and_wait([this] {
        if (unix_listener_) {
            if (loop_->watches(unix_listener_->fd())) loop_->remove_fd(unix_listener_->fd());
            unix_listener_->close();
        }
        if (tcp_listener_) {
            if (loop_->watches(tcp_listener_->fd())) loop_->remove_fd(tcp_listener_->fd());
            tcp_listener_->close();
        }
    });
}

void EventFront::settle_inputs() {
    // Two barriers: the first may run inside the loop iteration that is
    // already in progress; the second necessarily follows a fresh
    // poll-dispatch cycle, so every request line that was readable when
    // the first barrier was posted has been handed to on_line by now.
    barrier();
    barrier();
}

bool EventFront::flush_all(std::chrono::milliseconds timeout) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    while (true) {
        bool pending = false;
        post_and_wait([this, &pending] {
            for (const auto& entry : conns_) {
                const std::shared_ptr<Conn>& conn = entry.second;
                if (conn->dead()) continue;
                std::lock_guard<std::mutex> lock(conn->out_mutex_);
                if (conn->out_offset_ < conn->out_buffer_.size()) {
                    pending = true;
                    break;
                }
            }
        });
        if (!pending) return true;
        if (std::chrono::steady_clock::now() >= deadline) return false;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
}

void EventFront::close_all() {
    post_and_wait([this] {
        std::vector<std::shared_ptr<Conn>> all;
        all.reserve(conns_.size());
        for (const auto& entry : conns_) all.push_back(entry.second);
        for (const std::shared_ptr<Conn>& conn : all) close_conn(conn);
    });
}

void EventFront::shutdown() {
    if (shut_down_) return;
    shut_down_ = true;
    if (loop_thread_.joinable()) {
        loop_->stop();
        loop_thread_.join();
    }
    if (unix_listener_) unix_listener_->close();
    if (tcp_listener_) tcp_listener_->close();
}

// Readiness ----------------------------------------------------------------

int signal_ready(const std::string& ready_file, int ready_fd) {
    static constexpr char kReady[] = "ready\n";
    static constexpr std::size_t kReadyLen = sizeof kReady - 1;
    int kept = -1;
    if (!ready_file.empty()) {
        // O_RDWR, not O_WRONLY: opening a FIFO write-only blocks until a
        // reader appears, and readiness signaling must never block the
        // server.  The fd is kept open (returned) so a reader that shows
        // up late still collects the byte.
        const int fd = ::open(ready_file.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
        if (fd < 0) {
            throw support::net::NetError(std::string("open ready file ") + ready_file +
                                         ": " + std::strerror(errno));
        }
        if (::write(fd, kReady, kReadyLen) != static_cast<ssize_t>(kReadyLen)) {
            const int saved = errno;
            ::close(fd);
            throw support::net::NetError(std::string("write ready file ") + ready_file +
                                         ": " + std::strerror(saved));
        }
        kept = fd;
    }
    if (ready_fd >= 0) {
        if (::write(ready_fd, kReady, kReadyLen) != static_cast<ssize_t>(kReadyLen)) {
            const int saved = errno;
            ::close(ready_fd);
            throw support::net::NetError(std::string("write ready fd: ") +
                                         std::strerror(saved));
        }
        ::close(ready_fd);
    }
    return kept;
}

}  // namespace ld::serve
