// Rational delegation (the paper's §1.2 "further upfield" related work:
// Bloembergen–Grossi–Lackner, Zhang–Grossi): voters are strategic rather
// than mechanism-driven.  Each voter chooses an action — vote directly, or
// delegate to an approved neighbour — to maximise a utility, and we run
// best-response dynamics to a pure Nash equilibrium.
//
// Two utilities bracket the space:
//  * Selfish  — a voter maximises the competency of the sink that ends up
//    holding their vote ("my vote should be cast well").  Best responses
//    chase the most competent reachable guru, so equilibria concentrate
//    weight — the game-theoretic route to the paper's dictatorship harm.
//  * Cooperative — a voter maximises the group's probability of deciding
//    correctly (the paper's objective).  Equilibria balance competence
//    against the variance loss of concentration.
//
// Comparing equilibrium gain against the paper's simple local mechanisms
// (bench_game) quantifies the price of anarchy of liquid democracy.

#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "ld/delegation/delegation_graph.hpp"
#include "ld/model/instance.hpp"
#include "rng/rng.hpp"

namespace ld::game {

/// What each strategic voter maximises.
enum class Utility {
    Selfish,      ///< competency of the sink holding my vote
    Cooperative,  ///< exact P[group decides correctly]
};

/// A pure strategy profile: for each voter, either "vote" (encoded as the
/// voter's own id) or the approved neighbour they delegate to.
using Profile = std::vector<graph::Vertex>;

/// One applied deviation along the best-response trajectory, with the
/// group-correct probability *after* the deviation — the gain-along-the-
/// path measurement of the iterative-delegation workload (docs/CHURN.md).
struct TrajectoryPoint {
    std::size_t round = 0;
    graph::Vertex voter = 0;
    graph::Vertex from = 0;     ///< previous strategy (self = vote)
    graph::Vertex to = 0;       ///< new strategy
    double correct_probability = 0.0;  ///< P[correct] after this deviation
    double gain = 0.0;                 ///< vs exact P^D
};

/// Result of best-response dynamics.
struct EquilibriumResult {
    Profile profile;            ///< final strategy profile
    bool converged = false;     ///< true iff no voter wants to deviate
    std::size_t rounds = 0;     ///< full passes over the voters
    std::size_t deviations = 0; ///< total strategy changes applied
    double group_correct_probability = 0.0;  ///< exact P[correct] at the profile
    double gain_vs_direct = 0.0;             ///< vs exact P^D
    delegation::DelegationStats stats{};     ///< delegation shape at the profile
    /// Filled when GameOptions::record_trajectory is set: one point per
    /// applied deviation, in application order.
    std::vector<TrajectoryPoint> trajectory;
};

/// Options for the dynamics.
struct GameOptions {
    Utility utility = Utility::Selfish;
    std::size_t max_rounds = 64;   ///< passes over all voters before giving up
    bool random_order = true;      ///< shuffle the update order each round
    /// Minimum utility improvement required to deviate (hysteresis that
    /// guarantees termination of cooperative dynamics despite exact ties).
    double improvement_epsilon = 1e-12;
    /// Seed for the per-round update-order shuffle.  When unset, one value
    /// is drawn from the caller's rng at entry — deterministic for a fixed
    /// rng state, but that state usually depends on how many draws earlier
    /// evaluation consumed (e.g. on the thread count).  Set it (sweeps use
    /// the per-cell seed) and the trajectory replays byte-identically
    /// regardless of what the caller's rng was used for before.
    std::optional<std::uint64_t> shuffle_seed{};
    /// Viscous-democracy decay (Boldi et al. via Armstrong et al.): a
    /// selfish voter's utility for a sink at delegation depth d is
    /// viscosity^d · competency(sink), so long chains cost.  1 = classic
    /// selfish utility; ignored by the cooperative utility.
    double viscosity = 1.0;
    /// Record every applied deviation in EquilibriumResult::trajectory.
    bool record_trajectory = false;
    /// Certified clip budget for the live tally trees that drive
    /// cooperative probes and trajectory points (0 = exact windows).  The
    /// final group_correct_probability is always re-derived by the exact
    /// DP regardless.
    double tally_epsilon = 0.0;
};

/// Convert a profile into a delegation outcome (self-id = vote).
delegation::DelegationOutcome realize_profile(const model::Instance& instance,
                                              const Profile& profile);

/// Run best-response dynamics from the all-vote profile.
///
/// Implementation rides the incremental churn engine: the profile lives in
/// a delegation::DynamicResolution, each candidate deviation is evaluated
/// either in O(1) from the sink cache (selfish) or as an
/// apply-query-revert pair of O(log n) tally-tree updates (cooperative,
/// via election::LiveTally) — instead of an O(n)-to-O(n·W) from-scratch
/// re-resolution and DP per candidate.
EquilibriumResult best_response_dynamics(const model::Instance& instance,
                                         rng::Rng& rng,
                                         const GameOptions& options = {});

/// Check whether `profile` is a pure Nash equilibrium under `utility`
/// (no voter can strictly improve by more than `improvement_epsilon`).
bool is_equilibrium(const model::Instance& instance, const Profile& profile,
                    Utility utility, double improvement_epsilon = 1e-12);

}  // namespace ld::game
