#include "ld/game/delegation_game.hpp"

#include <algorithm>

#include "ld/election/evaluator.hpp"
#include "ld/election/tally.hpp"
#include "rng/sampling.hpp"
#include "support/expect.hpp"

namespace ld::game {

using support::expects;

namespace {

std::vector<mech::Action> profile_actions(const Profile& profile) {
    std::vector<mech::Action> actions;
    actions.reserve(profile.size());
    for (graph::Vertex v = 0; v < profile.size(); ++v) {
        if (profile[v] == v) {
            actions.push_back(mech::Action::vote());
        } else {
            actions.push_back(mech::Action::delegate_to(profile[v]));
        }
    }
    return actions;
}

/// Utility of `voter` at `profile` (profile must be cycle-free, which
/// approval-respecting strategies guarantee).
double utility_of(const model::Instance& instance, const Profile& profile,
                  graph::Vertex voter, Utility utility) {
    const delegation::DelegationOutcome outcome(profile_actions(profile));
    if (utility == Utility::Cooperative) {
        return election::exact_correct_probability(outcome, instance.competencies());
    }
    const graph::Vertex sink = outcome.sink_of(voter);
    if (sink == delegation::DelegationOutcome::kNoSink) return 0.0;
    return instance.competency(sink);
}

}  // namespace

delegation::DelegationOutcome realize_profile(const model::Instance& instance,
                                              const Profile& profile) {
    expects(profile.size() == instance.voter_count(),
            "realize_profile: one strategy per voter required");
    for (graph::Vertex v = 0; v < profile.size(); ++v) {
        const graph::Vertex t = profile[v];
        expects(t < profile.size(), "realize_profile: strategy out of range");
        if (t != v) {
            expects(instance.competency(v) + instance.alpha() <=
                        instance.competency(t),
                    "realize_profile: delegation to a non-approved voter");
            expects(instance.graph().has_edge(v, t),
                    "realize_profile: delegation outside the neighbourhood");
        }
    }
    return delegation::DelegationOutcome(profile_actions(profile));
}

EquilibriumResult best_response_dynamics(const model::Instance& instance,
                                         rng::Rng& rng, const GameOptions& options) {
    const std::size_t n = instance.voter_count();
    expects(n >= 1, "best_response_dynamics: empty instance");
    expects(options.max_rounds >= 1, "best_response_dynamics: need at least one round");

    EquilibriumResult result;
    result.profile.resize(n);
    for (graph::Vertex v = 0; v < n; ++v) result.profile[v] = v;  // all vote

    // Precompute approval sets once: the strategy space per voter.
    std::vector<std::vector<graph::Vertex>> choices(n);
    for (graph::Vertex v = 0; v < n; ++v) choices[v] = instance.approved_neighbours(v);

    std::vector<graph::Vertex> order(n);
    for (graph::Vertex v = 0; v < n; ++v) order[v] = v;

    for (std::size_t round = 0; round < options.max_rounds; ++round) {
        ++result.rounds;
        if (options.random_order) rng::shuffle(rng, order);
        bool changed = false;
        for (graph::Vertex v : order) {
            const graph::Vertex current = result.profile[v];
            double best_utility = utility_of(instance, result.profile, v,
                                             options.utility);
            graph::Vertex best_choice = current;
            // Candidate: vote directly (if not already).
            const auto consider = [&](graph::Vertex candidate) {
                if (candidate == best_choice) return;
                Profile trial = result.profile;
                trial[v] = candidate;
                const double u = utility_of(instance, trial, v, options.utility);
                if (u > best_utility + options.improvement_epsilon) {
                    best_utility = u;
                    best_choice = candidate;
                }
            };
            consider(v);
            for (graph::Vertex t : choices[v]) consider(t);
            if (best_choice != current) {
                result.profile[v] = best_choice;
                ++result.deviations;
                changed = true;
            }
        }
        if (!changed) {
            result.converged = true;
            break;
        }
    }

    const auto outcome = realize_profile(instance, result.profile);
    result.group_correct_probability =
        election::exact_correct_probability(outcome, instance.competencies());
    result.gain_vs_direct =
        result.group_correct_probability - election::exact_direct_probability(instance);
    result.stats = outcome.stats();
    return result;
}

bool is_equilibrium(const model::Instance& instance, const Profile& profile,
                    Utility utility, double improvement_epsilon) {
    expects(profile.size() == instance.voter_count(),
            "is_equilibrium: one strategy per voter required");
    for (graph::Vertex v = 0; v < profile.size(); ++v) {
        const double current = utility_of(instance, profile, v, utility);
        const auto try_deviation = [&](graph::Vertex candidate) {
            if (candidate == profile[v]) return false;
            Profile trial = profile;
            trial[v] = candidate;
            return utility_of(instance, trial, v, utility) >
                   current + improvement_epsilon;
        };
        if (try_deviation(v)) return false;
        for (graph::Vertex t : instance.approved_neighbours(v)) {
            if (try_deviation(t)) return false;
        }
    }
    return true;
}

}  // namespace ld::game
