#include "ld/game/delegation_game.hpp"

#include <algorithm>
#include <cmath>

#include "ld/delegation/incremental.hpp"
#include "ld/election/evaluator.hpp"
#include "ld/election/tally.hpp"
#include "ld/election/tally_delta.hpp"
#include "rng/sampling.hpp"
#include "support/expect.hpp"

namespace ld::game {

using support::expects;
using support::invariant;

namespace {

std::vector<mech::Action> profile_actions(const Profile& profile) {
    std::vector<mech::Action> actions;
    actions.reserve(profile.size());
    for (graph::Vertex v = 0; v < profile.size(); ++v) {
        if (profile[v] == v) {
            actions.push_back(mech::Action::vote());
        } else {
            actions.push_back(mech::Action::delegate_to(profile[v]));
        }
    }
    return actions;
}

/// Utility of `voter` at `profile` (profile must be cycle-free, which
/// approval-respecting strategies guarantee).
double utility_of(const model::Instance& instance, const Profile& profile,
                  graph::Vertex voter, Utility utility) {
    const delegation::DelegationOutcome outcome(profile_actions(profile));
    if (utility == Utility::Cooperative) {
        return election::exact_correct_probability(outcome, instance.competencies());
    }
    const graph::Vertex sink = outcome.sink_of(voter);
    if (sink == delegation::DelegationOutcome::kNoSink) return 0.0;
    return instance.competency(sink);
}

}  // namespace

delegation::DelegationOutcome realize_profile(const model::Instance& instance,
                                              const Profile& profile) {
    expects(profile.size() == instance.voter_count(),
            "realize_profile: one strategy per voter required");
    for (graph::Vertex v = 0; v < profile.size(); ++v) {
        const graph::Vertex t = profile[v];
        expects(t < profile.size(), "realize_profile: strategy out of range");
        if (t != v) {
            expects(instance.competency(v) + instance.alpha() <=
                        instance.competency(t),
                    "realize_profile: delegation to a non-approved voter");
            expects(instance.graph().has_edge(v, t),
                    "realize_profile: delegation outside the neighbourhood");
        }
    }
    return delegation::DelegationOutcome(profile_actions(profile));
}

EquilibriumResult best_response_dynamics(const model::Instance& instance,
                                         rng::Rng& rng, const GameOptions& options) {
    const std::size_t n = instance.voter_count();
    expects(n >= 1, "best_response_dynamics: empty instance");
    expects(options.max_rounds >= 1, "best_response_dynamics: need at least one round");
    expects(options.viscosity > 0.0 && options.viscosity <= 1.0,
            "best_response_dynamics: viscosity must be in (0, 1]");

    EquilibriumResult result;
    result.profile.resize(n);
    for (graph::Vertex v = 0; v < n; ++v) result.profile[v] = v;  // all vote

    // Precompute approval sets once: the strategy space per voter.
    std::vector<std::vector<graph::Vertex>> choices(n);
    for (graph::Vertex v = 0; v < n; ++v) choices[v] = instance.approved_neighbours(v);

    // The live profile.  Approval-respecting strategy spaces are acyclic
    // (delegations strictly climb competency), so no patch below can be
    // cycle-rejected — the check stays as a defensive skip.
    delegation::DynamicResolution res;
    res.reset_all_vote(n);
    // The tally trees only earn their keep when something reads live
    // probabilities along the way — cooperative probes or trajectory
    // points.  Pure selfish dynamics read only the sink cache, so skip
    // the tree maintenance entirely (it would dominate the run).
    const bool needs_tally =
        options.utility == Utility::Cooperative || options.record_trajectory;
    election::LiveTally tally;
    if (needs_tally) {
        tally.reset(instance.competencies().values(), res, options.tally_epsilon);
    }
    const double direct = needs_tally ? tally.direct_probability() : 0.0;

    const auto apply_strategy = [&](graph::Vertex v, graph::Vertex c) -> bool {
        const auto patch = (c == v) ? res.set_vote(v) : res.set_delegate(v, c);
        if (patch.cycle_rejected) return false;
        if (needs_tally) {
            tally.apply_sink_changes({patch.changes.data(), patch.change_count});
        }
        return true;
    };

    // Selfish utility of strategy `c` for `v`, read straight off the sink
    // cache.  No candidate target `t` can route through `v` (that would be
    // a cycle), so t's sink and depth are independent of v's own strategy
    // and the candidate needs no trial patch at all.
    const auto selfish_utility = [&](graph::Vertex v, graph::Vertex c) -> double {
        if (c == v) return instance.competency(v);
        const graph::Vertex sink = res.sink_of(c);
        if (sink == delegation::DynamicResolution::kNoSink) return 0.0;
        const double p = instance.competency(sink);
        if (options.viscosity == 1.0) return p;
        return std::pow(options.viscosity,
                        static_cast<double>(res.depth_of(c) + 1)) * p;
    };

    // Cooperative utility: apply the candidate, read the live tally, put
    // the old strategy back — two O(log n) tree touches per probe.
    const auto cooperative_utility = [&](graph::Vertex v, graph::Vertex current,
                                         graph::Vertex c) -> double {
        if (c == current) return tally.correct_probability();
        if (!apply_strategy(v, c)) return -1.0;
        const double u = tally.correct_probability();
        const bool reverted = apply_strategy(v, current);
        invariant(reverted, "best_response_dynamics: revert cannot cycle");
        return u;
    };

    std::vector<graph::Vertex> order(n);
    for (graph::Vertex v = 0; v < n; ++v) order[v] = v;
    // A dedicated shuffle stream: with shuffle_seed set the visit order —
    // and therefore the whole trajectory — replays byte-identically no
    // matter what the caller's rng was used for beforehand.
    rng::Rng order_rng(options.shuffle_seed ? *options.shuffle_seed : rng.next());

    for (std::size_t round = 0; round < options.max_rounds; ++round) {
        ++result.rounds;
        if (options.random_order) rng::shuffle(order_rng, order);
        bool changed = false;
        for (graph::Vertex v : order) {
            const graph::Vertex current = result.profile[v];
            double best_utility =
                options.utility == Utility::Selfish
                    ? selfish_utility(v, current)
                    : cooperative_utility(v, current, current);
            graph::Vertex best_choice = current;
            const auto consider = [&](graph::Vertex candidate) {
                if (candidate == best_choice) return;
                const double u = options.utility == Utility::Selfish
                                     ? selfish_utility(v, candidate)
                                     : cooperative_utility(v, current, candidate);
                if (u > best_utility + options.improvement_epsilon) {
                    best_utility = u;
                    best_choice = candidate;
                }
            };
            consider(v);
            for (graph::Vertex t : choices[v]) consider(t);
            if (best_choice != current) {
                const bool applied = apply_strategy(v, best_choice);
                invariant(applied,
                          "best_response_dynamics: approved deviation cycled");
                result.profile[v] = best_choice;
                ++result.deviations;
                changed = true;
                if (options.record_trajectory) {
                    const double p_now = tally.correct_probability();
                    result.trajectory.push_back({result.rounds, v, current,
                                                 best_choice, p_now,
                                                 p_now - direct});
                }
            }
        }
        if (!changed) {
            result.converged = true;
            break;
        }
    }

    const auto outcome = realize_profile(instance, result.profile);
    result.group_correct_probability =
        election::exact_correct_probability(outcome, instance.competencies());
    result.gain_vs_direct =
        result.group_correct_probability - election::exact_direct_probability(instance);
    result.stats = outcome.stats();
    return result;
}

bool is_equilibrium(const model::Instance& instance, const Profile& profile,
                    Utility utility, double improvement_epsilon) {
    expects(profile.size() == instance.voter_count(),
            "is_equilibrium: one strategy per voter required");
    for (graph::Vertex v = 0; v < profile.size(); ++v) {
        const double current = utility_of(instance, profile, v, utility);
        const auto try_deviation = [&](graph::Vertex candidate) {
            if (candidate == profile[v]) return false;
            Profile trial = profile;
            trial[v] = candidate;
            return utility_of(instance, trial, v, utility) >
                   current + improvement_epsilon;
        };
        if (try_deviation(v)) return false;
        for (graph::Vertex t : instance.approved_neighbours(v)) {
            if (try_deviation(t)) return false;
        }
    }
    return true;
}

}  // namespace ld::game
