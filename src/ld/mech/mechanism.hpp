// Delegation mechanisms (paper §2.2).  A mechanism maps a problem instance
// to, per voter, a decision: vote directly, delegate to some neighbour(s),
// or abstain (§6 extension).  All mechanisms in this library are *local*:
// they observe only a voter's neighbourhood and which neighbours are
// approved (competency + α dominance), never raw competencies — except
// through the "arbitrary ranking over the approval set" the paper permits.
//
// The interface is sampling-based: `act()` draws one decision for one voter
// using the caller's Rng.  Mechanisms whose per-voter delegation law is a
// simple closed form additionally expose `vote_directly_probability()` so
// tests can check the sampler against the exact law.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "ld/model/instance.hpp"
#include "rng/rng.hpp"

namespace ld::mech {

/// What a voter decided to do.
enum class ActionKind : std::uint8_t {
    Vote,      ///< cast a direct vote (carrying any delegated weight)
    Delegate,  ///< forward all held votes to `targets`
    Abstain,   ///< cast no vote (only allowed when delegation was possible)
};

/// One voter's sampled decision.
struct Action {
    ActionKind kind = ActionKind::Vote;
    /// Delegation targets; size 1 for the paper's single-delegate model,
    /// size >= 1 for the §6 weighted-majority extension.  Empty unless
    /// kind == Delegate.
    std::vector<graph::Vertex> targets;
    /// Optional per-target weights for the §6 "locally defined weight
    /// function over the delegates": empty means uniform; otherwise one
    /// positive weight per target, and the voter's effective vote is the
    /// *weighted* majority of the targets' realized votes.
    std::vector<double> target_weights;

    static Action vote() { return {}; }
    static Action abstain() { return {ActionKind::Abstain, {}, {}}; }
    static Action delegate_to(graph::Vertex t) {
        return {ActionKind::Delegate, {t}, {}};
    }
    static Action delegate_to_many(std::vector<graph::Vertex> ts) {
        return {ActionKind::Delegate, std::move(ts), {}};
    }
    static Action delegate_weighted(std::vector<graph::Vertex> ts,
                                    std::vector<double> ws) {
        return {ActionKind::Delegate, std::move(ts), std::move(ws)};
    }

    /// In-place variants for the act_into path: overwrite this action
    /// while keeping the heap buffers (`targets` capacity) alive.
    void assign_vote() {
        kind = ActionKind::Vote;
        targets.clear();
        target_weights.clear();
    }
    void assign_abstain() {
        kind = ActionKind::Abstain;
        targets.clear();
        target_weights.clear();
    }
    void assign_delegate_to(graph::Vertex t) {
        kind = ActionKind::Delegate;
        targets.clear();
        targets.push_back(t);
        target_weights.clear();
    }
};

/// Abstract delegation mechanism.
class Mechanism {
public:
    virtual ~Mechanism() = default;

    /// Mechanism name for experiment logs, e.g. "Algorithm1(j=sqrt)".
    virtual std::string name() const = 0;

    /// Sample voter `v`'s decision on `instance`.
    ///
    /// Implementations must be *per-voter independent*: the decision may
    /// depend only on (instance, v) and fresh randomness, so that realizing
    /// all n decisions yields the paper's product delegation law.
    virtual Action act(const model::Instance& instance, graph::Vertex v,
                       rng::Rng& rng) const = 0;

    /// Sample voter `v`'s decision into `out`, reusing its buffers — the
    /// zero-allocation path the replication workspace drives.  Must consume
    /// the same RNG stream and produce the same decision as `act`.  The
    /// default forwards to `act`; hot mechanisms override it to write into
    /// `out.targets` in place.
    virtual void act_into(const model::Instance& instance, graph::Vertex v,
                          rng::Rng& rng, Action& out) const {
        out = act(instance, v, rng);
    }

    /// Exact probability that voter `v` votes directly (neither delegates
    /// nor abstains), when available in closed form.  Used for testing and
    /// for theory-side expected-delegation computations.
    virtual std::optional<double> vote_directly_probability(
        const model::Instance& instance, graph::Vertex v) const;

    /// True if `act` may return multi-target delegations (§6 extension).
    virtual bool multi_delegation() const { return false; }

    /// True if `act` may return Abstain (§6 extension).
    virtual bool may_abstain() const { return false; }

    /// True if this mechanism only ever delegates to approved voters.
    /// All approval-respecting mechanisms induce acyclic delegation graphs
    /// because α > 0 strictly increases competency along every arc.
    virtual bool approval_respecting() const { return true; }
};

}  // namespace ld::mech
