#include "ld/mech/noisy_threshold.hpp"

#include <algorithm>

#include "rng/sampling.hpp"
#include "support/expect.hpp"

namespace ld::mech {

using support::expects;

NoisyThreshold::NoisyThreshold(std::size_t threshold, double noise)
    : threshold_(std::max<std::size_t>(1, threshold)), noise_(noise) {
    expects(noise_ >= 0.0 && noise_ < 0.5, "NoisyThreshold: noise must be in [0, 1/2)");
}

std::string NoisyThreshold::name() const {
    return "NoisyThreshold(j=" + std::to_string(threshold_) +
           ",eta=" + std::to_string(noise_) + ")";
}

Action NoisyThreshold::act(const model::Instance& instance, graph::Vertex v,
                           rng::Rng& rng) const {
    const auto& p = instance.competencies();
    const double own = p[v];
    const double alpha = instance.alpha();
    std::vector<graph::Vertex> perceived_approved;
    for (graph::Vertex w : instance.graph().neighbours(v)) {
        bool approved = own + alpha <= p[w];
        if (noise_ > 0.0 && rng.next_bernoulli(noise_)) approved = !approved;
        if (approved) perceived_approved.push_back(w);
    }
    if (perceived_approved.size() < threshold_) return Action::vote();
    return Action::delegate_to(
        perceived_approved[rng::uniform_index(rng, perceived_approved.size())]);
}

}  // namespace ld::mech
