#include "ld/mech/capped_target.hpp"

#include <algorithm>

#include "rng/sampling.hpp"
#include "support/expect.hpp"

namespace ld::mech {

using support::expects;

CappedTarget::CappedTarget(std::size_t degree_cap) : degree_cap_(degree_cap) {
    expects(degree_cap_ >= 1, "CappedTarget: cap must be at least 1");
}

std::string CappedTarget::name() const {
    return "CappedTarget(cap=" + std::to_string(degree_cap_) + ")";
}

std::vector<graph::Vertex> CappedTarget::eligible_targets(
    const model::Instance& instance, graph::Vertex v) const {
    auto approved = instance.approved_neighbours(v);
    std::erase_if(approved, [&](graph::Vertex t) {
        return instance.graph().degree(t) > degree_cap_;
    });
    return approved;
}

Action CappedTarget::act(const model::Instance& instance, graph::Vertex v,
                         rng::Rng& rng) const {
    const auto targets = eligible_targets(instance, v);
    if (targets.empty()) return Action::vote();
    return Action::delegate_to(targets[rng::uniform_index(rng, targets.size())]);
}

std::optional<double> CappedTarget::vote_directly_probability(
    const model::Instance& instance, graph::Vertex v) const {
    return eligible_targets(instance, v).empty() ? 1.0 : 0.0;
}

}  // namespace ld::mech
