#include "ld/mech/d_out_sampling.hpp"

#include <algorithm>
#include <cmath>

#include "rng/sampling.hpp"
#include "support/expect.hpp"

namespace ld::mech {

using support::expects;

DOutSampling::DOutSampling(std::size_t d, std::size_t threshold, SampleSource source)
    : d_(d), threshold_(std::max<std::size_t>(1, threshold)), source_(source) {
    expects(d_ >= 1, "DOutSampling: d must be >= 1");
    expects(threshold_ <= d_, "DOutSampling: threshold cannot exceed d");
}

DOutSampling DOutSampling::with_fraction(std::size_t d, double fraction,
                                         SampleSource source) {
    expects(fraction > 0.0 && fraction <= 1.0, "DOutSampling: fraction out of (0,1]");
    const auto j = static_cast<std::size_t>(std::floor(fraction * static_cast<double>(d)));
    return DOutSampling(d, std::max<std::size_t>(1, j), source);
}

std::string DOutSampling::name() const {
    return "Algorithm2(d=" + std::to_string(d_) + ",j=" + std::to_string(threshold_) +
           (source_ == SampleSource::Population ? ",population" : ",neighbourhood") + ")";
}

Action DOutSampling::act(const model::Instance& instance, graph::Vertex v,
                         rng::Rng& rng) const {
    const auto& p = instance.competencies();
    const double own = p[v];
    const double alpha = instance.alpha();

    std::vector<graph::Vertex> approved;
    if (source_ == SampleSource::Population) {
        const std::size_t n = instance.voter_count();
        if (n <= 1) return Action::vote();
        const std::size_t take = std::min(d_, n - 1);
        // Sample `take` distinct voters other than v.
        for (std::size_t t : rng::sample_without_replacement(rng, n - 1, take)) {
            const auto u = static_cast<graph::Vertex>(t < v ? t : t + 1);
            if (own + alpha <= p[u]) approved.push_back(u);
        }
    } else {
        const auto nbrs = instance.graph().neighbours(v);
        if (nbrs.empty()) return Action::vote();
        const std::size_t take = std::min(d_, nbrs.size());
        for (std::size_t t : rng::sample_without_replacement(rng, nbrs.size(), take)) {
            const graph::Vertex u = nbrs[t];
            if (own + alpha <= p[u]) approved.push_back(u);
        }
    }
    if (approved.size() < threshold_) return Action::vote();
    return Action::delegate_to(approved[rng::uniform_index(rng, approved.size())]);
}

}  // namespace ld::mech
