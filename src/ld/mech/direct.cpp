#include "ld/mech/direct.hpp"

// DirectVoting is fully inline; this translation unit anchors the header in
// the library so its symbols participate in the build like every mechanism.
