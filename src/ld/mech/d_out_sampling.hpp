// Algorithm 2 (paper §4.2): the Rand(n, d) mechanism.  Each voter samples
// d random voters, keeps the approved ones, and — if at least j(d) of the
// sampled voters are approved — delegates to a uniformly random approved
// sample; otherwise votes directly.
//
// Two sampling modes are provided:
//  * Population — the literal Algorithm 2: the d samples are drawn from all
//    voters, i.e. graph creation and delegation happen together (the paper
//    notes Rand(n, d) is "generated after p is assigned").
//  * Neighbourhood — the d samples are drawn from the voter's neighbours in
//    a pre-built (e.g. d-regular) graph, keeping the mechanism local on an
//    explicit topology.

#pragma once

#include <cstddef>
#include <functional>
#include <string>

#include "ld/mech/mechanism.hpp"

namespace ld::mech {

/// Where Algorithm 2 draws its d samples from.
enum class SampleSource { Population, Neighbourhood };

/// Algorithm 2: sample d targets, delegate iff >= j(d) approved.
class DOutSampling final : public Mechanism {
public:
    /// `d` — sample size; `threshold` — required approved count j(d)
    /// (clamped to >= 1); `source` — population or neighbourhood sampling.
    DOutSampling(std::size_t d, std::size_t threshold, SampleSource source);

    /// Convenience: j(d) = max(1, floor(d · fraction)), the "j(d) is a
    /// fraction of d" reading from Algorithm 2's comment.
    static DOutSampling with_fraction(std::size_t d, double fraction, SampleSource source);

    std::string name() const override;

    Action act(const model::Instance& instance, graph::Vertex v,
               rng::Rng& rng) const override;

    std::size_t d() const noexcept { return d_; }
    std::size_t threshold() const noexcept { return threshold_; }
    SampleSource source() const noexcept { return source_; }

private:
    std::size_t d_;
    std::size_t threshold_;
    SampleSource source_;
};

}  // namespace ld::mech
