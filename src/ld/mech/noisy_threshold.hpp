// Noisy-approval mechanism (§6 "Practical Considerations"): in practice a
// voter never observes true competencies; each pairwise "is my neighbour
// at least α better than me?" judgement is an estimate.  This mechanism is
// ApprovalSizeThreshold with every approval indicator independently
// flipped with probability `noise` per decision.
//
// With noise > 0 the mechanism is NOT approval-respecting: it can delegate
// downward, and realized delegation graphs can contain cycles — callers
// must realize with CyclePolicy::Discard.  `bench_noisy_approval` measures
// how fast the paper's guarantees degrade with the noise rate.

#pragma once

#include <cstddef>

#include "ld/mech/mechanism.hpp"

namespace ld::mech {

/// ApprovalSizeThreshold under ε-noisy pairwise competency comparisons.
class NoisyThreshold final : public Mechanism {
public:
    /// `threshold` — required (noisy) approval count; `noise` in [0, 1/2):
    /// each neighbour's approval indicator flips with this probability.
    NoisyThreshold(std::size_t threshold, double noise);

    std::string name() const override;

    Action act(const model::Instance& instance, graph::Vertex v,
               rng::Rng& rng) const override;

    bool approval_respecting() const override { return noise_ == 0.0; }

    double noise() const noexcept { return noise_; }
    std::size_t threshold() const noexcept { return threshold_; }

private:
    std::size_t threshold_;
    double noise_;
};

}  // namespace ld::mech
