// A practical mechanism implementing the Lemma 5 max-weight condition from
// the delegator's side: delegate to a uniformly random approved neighbour
// whose *degree* is at most `degree_cap`.  High-degree voters are the ones
// that accumulate weight (every neighbour may route votes to them), so
// refusing to delegate into hubs caps the expected sink weight — the lever
// the paper suggests real deployments (DAOs, §6) should enforce.

#pragma once

#include <cstddef>

#include "ld/mech/mechanism.hpp"

namespace ld::mech {

/// Delegate to a random approved neighbour of degree <= degree_cap; vote
/// directly when no such neighbour exists.
class CappedTarget final : public Mechanism {
public:
    explicit CappedTarget(std::size_t degree_cap);

    std::string name() const override;

    Action act(const model::Instance& instance, graph::Vertex v,
               rng::Rng& rng) const override;

    std::optional<double> vote_directly_probability(const model::Instance& instance,
                                                    graph::Vertex v) const override;

    std::size_t degree_cap() const noexcept { return degree_cap_; }

private:
    std::vector<graph::Vertex> eligible_targets(const model::Instance& instance,
                                                graph::Vertex v) const;
    std::size_t degree_cap_;
};

}  // namespace ld::mech
