#include "ld/mech/approval_size_threshold.hpp"

#include <algorithm>

#include "rng/sampling.hpp"

namespace ld::mech {

ApprovalSizeThreshold::ApprovalSizeThreshold(std::size_t threshold)
    : threshold_(std::max<std::size_t>(threshold, 1)) {}

std::string ApprovalSizeThreshold::name() const {
    return "ApprovalSizeThreshold(j=" + std::to_string(threshold_) + ")";
}

Action ApprovalSizeThreshold::act(const model::Instance& instance, graph::Vertex v,
                                  rng::Rng& rng) const {
    const auto approved = instance.approved_neighbours_view(v);
    if (approved.size() < threshold_) return Action::vote();
    return Action::delegate_to(approved[rng::uniform_index(rng, approved.size())]);
}

void ApprovalSizeThreshold::act_into(const model::Instance& instance, graph::Vertex v,
                                     rng::Rng& rng, Action& out) const {
    const auto approved = instance.approved_neighbours_view(v);
    if (approved.size() < threshold_) {
        out.assign_vote();
    } else {
        out.assign_delegate_to(approved[rng::uniform_index(rng, approved.size())]);
    }
}

std::optional<double> ApprovalSizeThreshold::vote_directly_probability(
    const model::Instance& instance, graph::Vertex v) const {
    return instance.approved_neighbours_view(v).size() < threshold_ ? 1.0 : 0.0;
}

}  // namespace ld::mech
