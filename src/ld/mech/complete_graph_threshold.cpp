#include "ld/mech/complete_graph_threshold.hpp"

#include <algorithm>
#include <cmath>

#include "rng/sampling.hpp"
#include "support/expect.hpp"

namespace ld::mech {

using support::expects;

CompleteGraphThreshold::CompleteGraphThreshold(ThresholdFn threshold,
                                               std::string threshold_name)
    : threshold_(std::move(threshold)), threshold_name_(std::move(threshold_name)) {
    expects(static_cast<bool>(threshold_), "CompleteGraphThreshold: empty threshold");
}

std::string CompleteGraphThreshold::name() const {
    return "Algorithm1(j=" + threshold_name_ + ")";
}

Action CompleteGraphThreshold::act(const model::Instance& instance, graph::Vertex v,
                                   rng::Rng& rng) const {
    const auto approved = instance.approved_neighbours_view(v);
    const std::size_t j = std::max<std::size_t>(1, threshold_(instance.graph().degree(v)));
    if (approved.size() < j) return Action::vote();
    return Action::delegate_to(approved[rng::uniform_index(rng, approved.size())]);
}

void CompleteGraphThreshold::act_into(const model::Instance& instance, graph::Vertex v,
                                      rng::Rng& rng, Action& out) const {
    const auto approved = instance.approved_neighbours_view(v);
    const std::size_t j = std::max<std::size_t>(1, threshold_(instance.graph().degree(v)));
    if (approved.size() < j) {
        out.assign_vote();
    } else {
        out.assign_delegate_to(approved[rng::uniform_index(rng, approved.size())]);
    }
}

std::optional<double> CompleteGraphThreshold::vote_directly_probability(
    const model::Instance& instance, graph::Vertex v) const {
    const auto approved = instance.approved_neighbours_view(v);
    const std::size_t j = std::max<std::size_t>(1, threshold_(instance.graph().degree(v)));
    return approved.size() < j ? 1.0 : 0.0;
}

CompleteGraphThreshold CompleteGraphThreshold::with_log_threshold() {
    return CompleteGraphThreshold(
        [](std::size_t n) {
            return std::max<std::size_t>(
                1, static_cast<std::size_t>(std::ceil(std::log2(static_cast<double>(n) + 1.0))));
        },
        "log");
}

CompleteGraphThreshold CompleteGraphThreshold::with_sqrt_threshold() {
    return CompleteGraphThreshold(
        [](std::size_t n) {
            return std::max<std::size_t>(
                1, static_cast<std::size_t>(std::ceil(std::sqrt(static_cast<double>(n)))));
        },
        "sqrt");
}

CompleteGraphThreshold CompleteGraphThreshold::with_linear_threshold(double fraction) {
    expects(fraction > 0.0 && fraction <= 1.0, "linear threshold fraction out of (0,1]");
    return CompleteGraphThreshold(
        [fraction](std::size_t n) {
            return std::max<std::size_t>(
                1, static_cast<std::size_t>(std::floor(fraction * static_cast<double>(n))));
        },
        "n*" + std::to_string(fraction));
}

}  // namespace ld::mech
