#include "ld/mech/abstaining.hpp"

#include "support/expect.hpp"

namespace ld::mech {

using support::expects;

Abstaining::Abstaining(const Mechanism& inner, double abstain_prob)
    : inner_(&inner), abstain_prob_(abstain_prob) {
    expects(abstain_prob_ >= 0.0 && abstain_prob_ <= 1.0,
            "Abstaining: probability out of [0,1]");
}

std::string Abstaining::name() const {
    return "Abstaining(p=" + std::to_string(abstain_prob_) + ", " + inner_->name() + ")";
}

Action Abstaining::act(const model::Instance& instance, graph::Vertex v,
                       rng::Rng& rng) const {
    Action inner_action = inner_->act(instance, v, rng);
    if (inner_action.kind == ActionKind::Delegate && rng.next_bernoulli(abstain_prob_)) {
        return Action::abstain();
    }
    return inner_action;
}

}  // namespace ld::mech
