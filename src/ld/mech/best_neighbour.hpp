// The "dictator-prone" mechanism used in the Figure 1 star counterexample:
// a voter with any approved neighbour delegates to the *most competent*
// one (the paper permits local mechanisms to use an arbitrary ranking over
// the approval set).  On a star this concentrates all weight on the centre
// — exactly the failure mode whose loss the paper quantifies as 1/4.

#pragma once

#include "ld/mech/mechanism.hpp"

namespace ld::mech {

/// Delegate to the highest-competency approved neighbour (ties → lowest
/// vertex id); vote directly when no neighbour is approved.
class BestNeighbour final : public Mechanism {
public:
    std::string name() const override { return "BestNeighbour"; }

    Action act(const model::Instance& instance, graph::Vertex v,
               rng::Rng& rng) const override;

    void act_into(const model::Instance& instance, graph::Vertex v, rng::Rng& rng,
                  Action& out) const override;

    std::optional<double> vote_directly_probability(const model::Instance& instance,
                                                    graph::Vertex v) const override;
};

}  // namespace ld::mech
