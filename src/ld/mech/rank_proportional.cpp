#include "ld/mech/rank_proportional.hpp"

#include <algorithm>
#include <cmath>

#include "rng/sampling.hpp"
#include "support/expect.hpp"

namespace ld::mech {

using support::expects;

RankProportional::RankProportional(std::size_t threshold, double sharpness)
    : threshold_(std::max<std::size_t>(1, threshold)), sharpness_(sharpness) {
    expects(sharpness_ >= 0.0, "RankProportional: sharpness must be non-negative");
}

std::string RankProportional::name() const {
    return "RankProportional(j=" + std::to_string(threshold_) +
           ",s=" + std::to_string(sharpness_) + ")";
}

Action RankProportional::act(const model::Instance& instance, graph::Vertex v,
                             rng::Rng& rng) const {
    auto approved = instance.approved_neighbours(v);
    if (approved.size() < threshold_) return Action::vote();
    // Sort approved by ascending competency; rank r = index + 1.
    std::sort(approved.begin(), approved.end(),
              [&](graph::Vertex a, graph::Vertex b) {
                  return instance.competency(a) < instance.competency(b);
              });
    std::vector<double> weights(approved.size());
    for (std::size_t r = 0; r < approved.size(); ++r) {
        weights[r] = std::pow(static_cast<double>(r + 1), sharpness_);
    }
    const rng::AliasTable table(weights);
    return Action::delegate_to(approved[table.sample(rng)]);
}

std::optional<double> RankProportional::vote_directly_probability(
    const model::Instance& instance, graph::Vertex v) const {
    return instance.approved_neighbours(v).size() < threshold_ ? 1.0 : 0.0;
}

}  // namespace ld::mech
