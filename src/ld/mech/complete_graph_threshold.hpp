// Algorithm 1 (paper §4.1): the delegation mechanism for complete graphs.
// Voter v_i compares |J(i)| against a threshold *function* j(n) of its
// neighbourhood size n and delegates to a uniformly random approved
// neighbour when |J(i)| >= j(n).
//
// Theorem 2 proves SPG for {K_n, PC = α/k} with Delegate(n) >= n/k, and
// DNH for {K_n}, when j(n) <= n/3.  Canonical threshold functions used by
// the benches (log, sqrt, linear-fraction) are provided as factories.

#pragma once

#include <cstddef>
#include <functional>
#include <string>

#include "ld/mech/mechanism.hpp"

namespace ld::mech {

/// Threshold function j: neighbourhood size → required approval count.
using ThresholdFn = std::function<std::size_t(std::size_t)>;

/// Algorithm 1: delegate iff |approved neighbours| >= j(#neighbours).
class CompleteGraphThreshold final : public Mechanism {
public:
    CompleteGraphThreshold(ThresholdFn threshold, std::string threshold_name);

    std::string name() const override;

    Action act(const model::Instance& instance, graph::Vertex v,
               rng::Rng& rng) const override;

    void act_into(const model::Instance& instance, graph::Vertex v, rng::Rng& rng,
                  Action& out) const override;

    std::optional<double> vote_directly_probability(const model::Instance& instance,
                                                    graph::Vertex v) const override;

    /// j(n) for inspection.
    std::size_t threshold_for(std::size_t neighbourhood_size) const {
        return threshold_(neighbourhood_size);
    }

    /// j(n) = max(1, ceil(log2 n)).
    static CompleteGraphThreshold with_log_threshold();

    /// j(n) = max(1, ceil(sqrt n)).
    static CompleteGraphThreshold with_sqrt_threshold();

    /// j(n) = max(1, floor(n · fraction)); the paper's DNH proof assumes
    /// fraction <= 1/3.
    static CompleteGraphThreshold with_linear_threshold(double fraction);

private:
    ThresholdFn threshold_;
    std::string threshold_name_;
};

}  // namespace ld::mech
