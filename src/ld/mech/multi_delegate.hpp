// §6 "Weighted Majority Vote" extension: a voter delegates to *several*
// approved delegates and their effective vote is the majority of the
// delegates' realized votes.  The paper conjectures SPG transfers because
// majority-of-m approved delegates stochastically dominates one random
// approved delegate; `bench_multi_delegate` measures exactly that.
//
// The voter delegates to min(m, |approved|) targets — forced odd by
// dropping one if needed, so the delegate majority is never tied — and only
// when at least `threshold` neighbours are approved.

#pragma once

#include <cstddef>

#include "ld/mech/mechanism.hpp"

namespace ld::mech {

/// Delegate to up to `m` random approved neighbours; effective vote is the
/// majority over the chosen delegates (resolved by the election evaluator).
class MultiDelegate final : public Mechanism {
public:
    /// `m` — desired delegate count (must be odd); `threshold` — minimum
    /// approved-neighbour count needed to delegate at all.
    MultiDelegate(std::size_t m, std::size_t threshold);

    std::string name() const override;

    Action act(const model::Instance& instance, graph::Vertex v,
               rng::Rng& rng) const override;

    bool multi_delegation() const override { return true; }

    std::size_t m() const noexcept { return m_; }

private:
    std::size_t m_;
    std::size_t threshold_;
};

}  // namespace ld::mech
