#include "ld/mech/unrestricted_abstaining.hpp"

#include "support/expect.hpp"

namespace ld::mech {

using support::expects;

UnrestrictedAbstaining::UnrestrictedAbstaining(const Mechanism& inner,
                                               double abstain_prob)
    : inner_(&inner), abstain_prob_(abstain_prob) {
    expects(abstain_prob_ >= 0.0 && abstain_prob_ <= 1.0,
            "UnrestrictedAbstaining: probability out of [0,1]");
}

std::string UnrestrictedAbstaining::name() const {
    return "UnrestrictedAbstaining(p=" + std::to_string(abstain_prob_) + ", " +
           inner_->name() + ")";
}

Action UnrestrictedAbstaining::act(const model::Instance& instance, graph::Vertex v,
                                   rng::Rng& rng) const {
    if (rng.next_bernoulli(abstain_prob_)) return Action::abstain();
    return inner_->act(instance, v, rng);
}

}  // namespace ld::mech
