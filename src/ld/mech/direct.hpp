// Direct voting (paper Example 2): nobody delegates.  This is the baseline
// `D` in gain(M, G) = P^M(G) − P^D(G).

#pragma once

#include "ld/mech/mechanism.hpp"

namespace ld::mech {

/// The mechanism that never delegates.
class DirectVoting final : public Mechanism {
public:
    std::string name() const override { return "DirectVoting"; }

    Action act(const model::Instance&, graph::Vertex, rng::Rng&) const override {
        return Action::vote();
    }

    void act_into(const model::Instance&, graph::Vertex, rng::Rng&,
                  Action& out) const override {
        out.assign_vote();
    }

    std::optional<double> vote_directly_probability(const model::Instance&,
                                                    graph::Vertex) const override {
        return 1.0;
    }
};

}  // namespace ld::mech
