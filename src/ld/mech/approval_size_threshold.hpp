// The paper's Example 1: voter i delegates to a uniformly random approved
// neighbour whenever |J(i) ∩ N(i)| >= threshold, else votes directly.
// With threshold 0 (well, >= 1 effective — an empty approval set can never
// be delegated into), this is the mechanism of Figure 2.

#pragma once

#include <cstddef>

#include "ld/mech/mechanism.hpp"

namespace ld::mech {

/// Delegate iff the approved-neighbour count reaches a fixed threshold.
class ApprovalSizeThreshold final : public Mechanism {
public:
    /// `threshold` — minimum |J(i) ∩ N(i)| required to delegate.  A voter
    /// with an empty approval set always votes directly regardless.
    explicit ApprovalSizeThreshold(std::size_t threshold);

    std::string name() const override;

    Action act(const model::Instance& instance, graph::Vertex v,
               rng::Rng& rng) const override;

    void act_into(const model::Instance& instance, graph::Vertex v, rng::Rng& rng,
                  Action& out) const override;

    std::optional<double> vote_directly_probability(const model::Instance& instance,
                                                    graph::Vertex v) const override;

    std::size_t threshold() const noexcept { return threshold_; }

private:
    std::size_t threshold_;
};

}  // namespace ld::mech
