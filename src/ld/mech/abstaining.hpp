// §6 "Vote Abstaining" extension: a voter may abstain *only if they could
// delegate* (decision-agnostic voters).  This wrapper takes any inner
// mechanism; whenever the inner mechanism decides to delegate, the voter
// instead abstains with probability `abstain_prob`.  Voters the inner
// mechanism sends to direct voting never abstain — this is precisely the
// restriction the paper imposes to keep DNH intact (footnote 4).

#pragma once

#include <memory>

#include "ld/mech/mechanism.hpp"

namespace ld::mech {

/// Wraps a mechanism with the paper's restricted abstention model.
class Abstaining final : public Mechanism {
public:
    /// `inner` must outlive this wrapper; `abstain_prob` in [0, 1].
    Abstaining(const Mechanism& inner, double abstain_prob);

    std::string name() const override;

    Action act(const model::Instance& instance, graph::Vertex v,
               rng::Rng& rng) const override;

    bool may_abstain() const override { return true; }
    bool multi_delegation() const override { return inner_->multi_delegation(); }

    double abstain_probability() const noexcept { return abstain_prob_; }

private:
    const Mechanism* inner_;
    double abstain_prob_;
};

}  // namespace ld::mech
