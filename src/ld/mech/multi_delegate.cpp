#include "ld/mech/multi_delegate.hpp"

#include <algorithm>

#include "rng/sampling.hpp"
#include "support/expect.hpp"

namespace ld::mech {

using support::expects;

MultiDelegate::MultiDelegate(std::size_t m, std::size_t threshold)
    : m_(m), threshold_(std::max<std::size_t>(1, threshold)) {
    expects(m_ >= 1, "MultiDelegate: m must be >= 1");
    expects(m_ % 2 == 1, "MultiDelegate: m must be odd (tie-free majority)");
}

std::string MultiDelegate::name() const {
    return "MultiDelegate(m=" + std::to_string(m_) + ",j=" + std::to_string(threshold_) +
           ")";
}

Action MultiDelegate::act(const model::Instance& instance, graph::Vertex v,
                          rng::Rng& rng) const {
    const auto approved = instance.approved_neighbours(v);
    if (approved.size() < threshold_) return Action::vote();
    std::size_t take = std::min(m_, approved.size());
    if (take % 2 == 0) --take;  // keep the delegate majority tie-free
    if (take == 0) return Action::vote();
    std::vector<graph::Vertex> targets;
    targets.reserve(take);
    for (std::size_t idx : rng::sample_without_replacement(rng, approved.size(), take)) {
        targets.push_back(approved[idx]);
    }
    return Action::delegate_to_many(std::move(targets));
}

}  // namespace ld::mech
