// A mechanism exploiting the paper's "arbitrary ranking over the approval
// set" allowance without becoming a dictator-maker: delegate to an
// approved neighbour with probability proportional to its *rank* in the
// approval set (best neighbour most likely, worst approved least likely).
// It interpolates between ApprovalSizeThreshold (uniform) and
// BestNeighbour (argmax), trading expected competency boost against
// weight concentration — the knob `sharpness` controls the trade-off and
// `bench`/tests chart where DNH starts to erode.

#pragma once

#include <cstddef>

#include "ld/mech/mechanism.hpp"

namespace ld::mech {

/// Delegate to approved neighbour of competency-rank r (1 = worst approved)
/// with probability ∝ r^sharpness; vote when fewer than `threshold`
/// neighbours are approved.  sharpness = 0 is uniform; large sharpness
/// approaches BestNeighbour.
class RankProportional final : public Mechanism {
public:
    RankProportional(std::size_t threshold, double sharpness);

    std::string name() const override;

    Action act(const model::Instance& instance, graph::Vertex v,
               rng::Rng& rng) const override;

    std::optional<double> vote_directly_probability(const model::Instance& instance,
                                                    graph::Vertex v) const override;

    double sharpness() const noexcept { return sharpness_; }

private:
    std::size_t threshold_;
    double sharpness_;
};

}  // namespace ld::mech
