#include "ld/mech/mechanism.hpp"

namespace ld::mech {

std::optional<double> Mechanism::vote_directly_probability(const model::Instance&,
                                                           graph::Vertex) const {
    return std::nullopt;
}

}  // namespace ld::mech
