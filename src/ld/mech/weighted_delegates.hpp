// §6 "Weighted Majority Vote" with an explicit locally defined weight
// function: the voter delegates to its top-m approved neighbours (by the
// local competency ranking the paper permits) and weights the k-th best
// delegate by decay^k.  The voter's effective vote is the weighted
// majority of the delegates' realized votes; weighted ties are broken by
// the voter's own draw.
//
// decay = 1 recovers uniform weights (MultiDelegate over the top-m set);
// decay → 0 approaches BestNeighbour.  The paper notes any non-trivial
// weight function assumes extra information about the delegates — this
// mechanism uses only the ranking, the weakest such information.

#pragma once

#include <cstddef>

#include "ld/mech/mechanism.hpp"

namespace ld::mech {

/// Delegate to the top-m approved neighbours with geometric rank weights.
class WeightedDelegates final : public Mechanism {
public:
    /// `m` — delegate count; `threshold` — minimum approved neighbours to
    /// delegate at all; `decay` ∈ (0, 1] — weight ratio between ranks.
    WeightedDelegates(std::size_t m, std::size_t threshold, double decay);

    std::string name() const override;

    Action act(const model::Instance& instance, graph::Vertex v,
               rng::Rng& rng) const override;

    bool multi_delegation() const override { return true; }

    double decay() const noexcept { return decay_; }

private:
    std::size_t m_;
    std::size_t threshold_;
    double decay_;
};

}  // namespace ld::mech
