#include "ld/mech/weighted_delegates.hpp"

#include <algorithm>

#include "support/expect.hpp"

namespace ld::mech {

using support::expects;

WeightedDelegates::WeightedDelegates(std::size_t m, std::size_t threshold, double decay)
    : m_(m), threshold_(std::max<std::size_t>(1, threshold)), decay_(decay) {
    expects(m_ >= 1, "WeightedDelegates: m must be >= 1");
    expects(decay_ > 0.0 && decay_ <= 1.0, "WeightedDelegates: decay out of (0,1]");
}

std::string WeightedDelegates::name() const {
    return "WeightedDelegates(m=" + std::to_string(m_) + ",j=" +
           std::to_string(threshold_) + ",decay=" + std::to_string(decay_) + ")";
}

Action WeightedDelegates::act(const model::Instance& instance, graph::Vertex v,
                              rng::Rng&) const {
    auto approved = instance.approved_neighbours(v);
    if (approved.size() < threshold_) return Action::vote();
    // Top-m by competency (descending), deterministic local ranking.
    std::sort(approved.begin(), approved.end(),
              [&](graph::Vertex a, graph::Vertex b) {
                  if (instance.competency(a) != instance.competency(b)) {
                      return instance.competency(a) > instance.competency(b);
                  }
                  return a < b;
              });
    const std::size_t take = std::min(m_, approved.size());
    std::vector<graph::Vertex> targets(approved.begin(),
                                       approved.begin() + static_cast<std::ptrdiff_t>(take));
    std::vector<double> weights(take);
    double w = 1.0;
    for (std::size_t k = 0; k < take; ++k) {
        weights[k] = w;
        w *= decay_;
    }
    return Action::delegate_weighted(std::move(targets), std::move(weights));
}

}  // namespace ld::mech
