// The *cautionary* abstention model from the paper's footnote 4: "Allowing
// all voters the possibility of abstaining from voting could result in all
// but one sink abstaining and thus could violate DNH."
//
// Unlike `Abstaining` (which only lets would-be delegators opt out), this
// wrapper lets EVERY voter — including direct voters — abstain with
// probability q.  At high q the surviving sinks are a small random subset
// and the outcome degenerates towards a coin flip of whoever is left:
// `bench_abstention` contrasts the two models to demonstrate exactly the
// footnote's failure mode.

#pragma once

#include "ld/mech/mechanism.hpp"

namespace ld::mech {

/// Every voter abstains with probability q, regardless of role.
class UnrestrictedAbstaining final : public Mechanism {
public:
    /// `inner` must outlive this wrapper; q in [0, 1].
    UnrestrictedAbstaining(const Mechanism& inner, double abstain_prob);

    std::string name() const override;

    Action act(const model::Instance& instance, graph::Vertex v,
               rng::Rng& rng) const override;

    bool may_abstain() const override { return true; }
    bool multi_delegation() const override { return inner_->multi_delegation(); }
    bool approval_respecting() const override { return inner_->approval_respecting(); }

private:
    const Mechanism* inner_;
    double abstain_prob_;
};

}  // namespace ld::mech
