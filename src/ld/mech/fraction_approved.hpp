// Theorem 5's mechanism for bounded-minimum-degree graphs: a voter
// delegates iff at least a fixed *fraction* of its neighbours are approved
// ("a voter delegates if at least 1/3 of its neighbors are approved").
// Target: uniformly random approved neighbour.

#pragma once

#include "ld/mech/mechanism.hpp"

namespace ld::mech {

/// Delegate iff |approved ∩ N(v)| >= fraction · |N(v)| (and >= 1).
class FractionApproved final : public Mechanism {
public:
    /// `fraction` in (0, 1]; the paper's Theorem 5 uses 1/3.
    explicit FractionApproved(double fraction = 1.0 / 3.0);

    std::string name() const override;

    Action act(const model::Instance& instance, graph::Vertex v,
               rng::Rng& rng) const override;

    void act_into(const model::Instance& instance, graph::Vertex v, rng::Rng& rng,
                  Action& out) const override;

    std::optional<double> vote_directly_probability(const model::Instance& instance,
                                                    graph::Vertex v) const override;

    double fraction() const noexcept { return fraction_; }

private:
    bool should_delegate(const model::Instance& instance, graph::Vertex v,
                         std::size_t approved_count) const;
    double fraction_;
};

}  // namespace ld::mech
