#include "ld/mech/best_neighbour.hpp"

namespace ld::mech {

Action BestNeighbour::act(const model::Instance& instance, graph::Vertex v,
                          rng::Rng&) const {
    const auto approved = instance.approved_neighbours_view(v);
    if (approved.empty()) return Action::vote();
    graph::Vertex best = approved.front();
    for (graph::Vertex w : approved) {
        if (instance.competency(w) > instance.competency(best)) best = w;
    }
    return Action::delegate_to(best);
}

void BestNeighbour::act_into(const model::Instance& instance, graph::Vertex v,
                             rng::Rng&, Action& out) const {
    const auto approved = instance.approved_neighbours_view(v);
    if (approved.empty()) {
        out.assign_vote();
        return;
    }
    graph::Vertex best = approved.front();
    for (graph::Vertex w : approved) {
        if (instance.competency(w) > instance.competency(best)) best = w;
    }
    out.assign_delegate_to(best);
}

std::optional<double> BestNeighbour::vote_directly_probability(
    const model::Instance& instance, graph::Vertex v) const {
    return instance.approved_neighbours_view(v).empty() ? 1.0 : 0.0;
}

}  // namespace ld::mech
