#include "ld/mech/fraction_approved.hpp"

#include <cmath>

#include "rng/sampling.hpp"
#include "support/expect.hpp"

namespace ld::mech {

using support::expects;

FractionApproved::FractionApproved(double fraction) : fraction_(fraction) {
    expects(fraction_ > 0.0 && fraction_ <= 1.0, "FractionApproved: fraction out of (0,1]");
}

std::string FractionApproved::name() const {
    return "FractionApproved(f=" + std::to_string(fraction_) + ")";
}

bool FractionApproved::should_delegate(const model::Instance& instance, graph::Vertex v,
                                       std::size_t approved_count) const {
    const std::size_t deg = instance.graph().degree(v);
    if (deg == 0 || approved_count == 0) return false;
    return static_cast<double>(approved_count) >= fraction_ * static_cast<double>(deg);
}

Action FractionApproved::act(const model::Instance& instance, graph::Vertex v,
                             rng::Rng& rng) const {
    const auto approved = instance.approved_neighbours_view(v);
    if (!should_delegate(instance, v, approved.size())) return Action::vote();
    return Action::delegate_to(approved[rng::uniform_index(rng, approved.size())]);
}

void FractionApproved::act_into(const model::Instance& instance, graph::Vertex v,
                                rng::Rng& rng, Action& out) const {
    const auto approved = instance.approved_neighbours_view(v);
    if (!should_delegate(instance, v, approved.size())) {
        out.assign_vote();
    } else {
        out.assign_delegate_to(approved[rng::uniform_index(rng, approved.size())]);
    }
}

std::optional<double> FractionApproved::vote_directly_probability(
    const model::Instance& instance, graph::Vertex v) const {
    const auto approved = instance.approved_neighbours_view(v);
    return should_delegate(instance, v, approved.size()) ? 0.0 : 1.0;
}

}  // namespace ld::mech
