#include "stats/confidence.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "prob/normal.hpp"
#include "support/expect.hpp"

namespace ld::stats {

using support::expects;

namespace {

double z_for(double confidence) {
    expects(confidence > 0.0 && confidence < 1.0, "confidence must be in (0,1)");
    return prob::normal_quantile(0.5 + confidence / 2.0);
}

}  // namespace

Interval mean_interval(double mean, double standard_error, double confidence) {
    expects(standard_error >= 0.0, "mean_interval: negative standard error");
    const double z = z_for(confidence);
    return {mean - z * standard_error, mean + z * standard_error};
}

Interval wilson_interval(std::size_t successes, std::size_t trials, double confidence) {
    expects(successes <= trials, "wilson_interval: successes exceed trials");
    if (trials == 0) return {0.0, 1.0};
    const double z = z_for(confidence);
    const double n = static_cast<double>(trials);
    const double phat = static_cast<double>(successes) / n;
    const double z2 = z * z;
    const double denom = 1.0 + z2 / n;
    const double centre = (phat + z2 / (2.0 * n)) / denom;
    const double half =
        z * std::sqrt(phat * (1.0 - phat) / n + z2 / (4.0 * n * n)) / denom;
    return {std::max(0.0, centre - half), std::min(1.0, centre + half)};
}

Interval bootstrap_mean_interval(rng::Rng& rng, std::span<const double> sample,
                                 std::size_t resamples, double confidence) {
    expects(!sample.empty(), "bootstrap_mean_interval: empty sample");
    expects(resamples >= 2, "bootstrap_mean_interval: need at least 2 resamples");
    std::vector<double> means;
    means.reserve(resamples);
    for (std::size_t r = 0; r < resamples; ++r) {
        double sum = 0.0;
        for (std::size_t i = 0; i < sample.size(); ++i) {
            sum += sample[rng.next_below(sample.size())];
        }
        means.push_back(sum / static_cast<double>(sample.size()));
    }
    std::sort(means.begin(), means.end());
    const double alpha = (1.0 - confidence) / 2.0;
    const auto idx = [&](double q) {
        const auto i = static_cast<std::size_t>(q * static_cast<double>(means.size() - 1));
        return means[i];
    };
    return {idx(alpha), idx(1.0 - alpha)};
}

}  // namespace ld::stats
