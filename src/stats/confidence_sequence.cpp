#include "stats/confidence_sequence.hpp"

#include <algorithm>
#include <cmath>

#include "support/expect.hpp"

namespace ld::stats {

using support::expects;

const char* cs_boundary_name(CsBoundary boundary) noexcept {
    switch (boundary) {
        case CsBoundary::Hoeffding: return "hoeffding";
        case CsBoundary::EmpiricalBernstein: return "empirical_bernstein";
    }
    return "unknown";
}

CsBoundary parse_cs_boundary(const std::string& name) {
    if (name == "hoeffding") return CsBoundary::Hoeffding;
    if (name == "empirical_bernstein" || name == "empirical-bernstein" ||
        name == "eb") {
        return CsBoundary::EmpiricalBernstein;
    }
    expects(false, "unknown confidence-sequence boundary (want hoeffding, "
                   "empirical_bernstein, or eb): " + name);
    return CsBoundary::Hoeffding;  // unreachable
}

const char* cert_stop_name(CertStop stop) noexcept {
    switch (stop) {
        case CertStop::DecidedAbove: return "decided_above";
        case CertStop::DecidedBelow: return "decided_below";
        case CertStop::BudgetExhausted: return "budget_exhausted";
    }
    return "unknown";
}

ConfidenceSequence::ConfidenceSequence(CsBoundary boundary, double delta)
    : boundary_(boundary), delta_(delta) {
    expects(delta > 0.0 && delta < 1.0,
            "ConfidenceSequence: delta must lie in (0, 1)");
}

void ConfidenceSequence::add(double x) {
    expects(x >= 0.0 && x <= 1.0,
            "ConfidenceSequence: observations must lie in [0, 1]");
    acc_.add(x);
}

double ConfidenceSequence::half_width_at(std::size_t look_index) const {
    const double t = static_cast<double>(acc_.count());
    // Per-look budget δ_k = δ / (k (k + 1)); the series telescopes to δ,
    // so validity holds jointly over every look regardless of how many
    // are eventually taken.
    const double k = static_cast<double>(look_index);
    const double delta_k = delta_ / (k * (k + 1.0));
    switch (boundary_) {
        case CsBoundary::Hoeffding:
            expects(acc_.count() >= 1, "ConfidenceSequence: no observations");
            return std::sqrt(std::log(2.0 / delta_k) / (2.0 * t));
        case CsBoundary::EmpiricalBernstein: {
            // Maurer–Pontil Theorem 4 per tail at δ_k/2 ⇒ ln(4/δ_k) terms;
            // needs t ≥ 2 for the sample variance.
            expects(acc_.count() >= 2,
                    "ConfidenceSequence: empirical-Bernstein boundary needs "
                    ">= 2 observations");
            const double log_term = std::log(4.0 / delta_k);
            return std::sqrt(2.0 * acc_.variance() * log_term / t) +
                   7.0 * log_term / (3.0 * (t - 1.0));
        }
    }
    return 1.0;  // unreachable
}

double ConfidenceSequence::peek_half_width() const {
    return half_width_at(looks_ + 1);
}

Interval ConfidenceSequence::look() {
    ++looks_;
    const double eps = half_width_at(looks_);
    // The mean lives in [0, 1] by assumption, so clipping only tightens.
    return Interval{std::max(0.0, acc_.mean() - eps),
                    std::min(1.0, acc_.mean() + eps)};
}

}  // namespace ld::stats
