// Empirical CDF over a finite sample, used to compare measured tail
// frequencies against the Chernoff / Hoeffding bounds in the recycle-
// sampling and Lemma 5 experiments.

#pragma once

#include <span>
#include <vector>

namespace ld::stats {

/// Immutable empirical distribution of a sample.
class Ecdf {
public:
    /// Copies and sorts the sample.  Must be non-empty.
    explicit Ecdf(std::span<const double> sample);

    std::size_t size() const noexcept { return sorted_.size(); }

    /// F(x) = fraction of observations <= x.
    double cdf(double x) const;

    /// Fraction of observations strictly below x (lower tail frequency).
    double fraction_below(double x) const;

    /// Fraction of observations strictly above x (upper tail frequency).
    double fraction_above(double x) const;

    /// q-th sample quantile (nearest-rank), q in [0, 1].
    double quantile(double q) const;

    double min() const noexcept { return sorted_.front(); }
    double max() const noexcept { return sorted_.back(); }

private:
    std::vector<double> sorted_;
};

}  // namespace ld::stats
