// Anytime-valid confidence sequences for bounded observations.
//
// The adaptive stopper in ld/election (`--target-se`) re-tests a fixed
// standard-error target at every batch boundary.  Repeated looks at a
// fixed-width CI are *not* a valid confidence procedure: each look has its
// own α chance of excluding the truth, and the union of looks silently
// inflates the error far beyond the nominal level (see
// docs/STATISTICS.md).  A confidence sequence fixes this by spending a
// per-look slice δ_k of the total error budget δ, with Σ_k δ_k ≤ δ, so
//
//     P( ∃ look k : mean ∉ I_k ) ≤ δ
//
// holds simultaneously over *every* look — which makes "stop as soon as
// the interval clears a threshold" a valid decision rule at level δ.
//
// Two boundary engines are provided, both for i.i.d. observations bounded
// in [0, 1] (our per-replication P^M terms and correctness indicators):
//
//   Hoeffding           ε_k = sqrt( ln(2/δ_k) / (2 t) )
//   EmpiricalBernstein  ε_k = sqrt( 2 V_t ln(4/δ_k) / t )
//                             + 7 ln(4/δ_k) / (3 (t − 1))
//
// with t the observation count at look k, V_t the unbiased sample
// variance, and the per-look budget δ_k = δ / (k (k + 1)) (so
// Σ_{k≥1} δ_k = δ exactly).  The empirical-Bernstein bound
// (Maurer & Pontil 2009, Theorem 4, two-sided via δ/2 per tail) adapts to
// the observed variance: for near-deterministic replications (the common
// case under Rao–Blackwellised tallies) it is far narrower than Hoeffding.
//
// Exact formulas, assumptions, and the composition with the certified
// ε/2 truncated-tally error are documented in docs/STATISTICS.md.

#pragma once

#include <cstddef>
#include <string>

#include "stats/confidence.hpp"
#include "stats/running_stats.hpp"

namespace ld::stats {

/// Which anytime-valid half-width formula a ConfidenceSequence uses.
enum class CsBoundary {
    Hoeffding,          ///< variance-free, range-based
    EmpiricalBernstein, ///< variance-adaptive (Maurer–Pontil)
};

/// Canonical lowercase name ("hoeffding" / "empirical_bernstein").
const char* cs_boundary_name(CsBoundary boundary) noexcept;

/// Parse a boundary name; accepts "hoeffding", "empirical_bernstein",
/// "empirical-bernstein", and "eb".  Throws ContractViolation otherwise.
CsBoundary parse_cs_boundary(const std::string& name);

/// Why a certified run stopped.
enum class CertStop {
    DecidedAbove,    ///< interval cleared the threshold from above
    DecidedBelow,    ///< interval cleared the threshold from below
    BudgetExhausted, ///< replication cap hit before a decision
};

/// Short stable label ("decided_above" / "decided_below" /
/// "budget_exhausted") — used in CLI output, sweep rows, serve responses,
/// and the cert.stop_reason metric docs.
const char* cert_stop_name(CertStop stop) noexcept;

/// A two-sided anytime-valid certificate on a mean in [0, 1]:
/// P( mean ∉ [lo, hi] ) ≤ delta over all looks taken, with the certified
/// numerical tally error (ε/2 per observation) already folded into the
/// endpoints.  docs/STATISTICS.md derives the end-to-end budget.
struct CertifiedEstimate {
    double lo = 0.0;              ///< certified lower endpoint (statistical + numerical)
    double hi = 1.0;              ///< certified upper endpoint
    double delta = 0.0;           ///< statistical error budget spent by the sequence
    double numerical_error = 0.0; ///< per-observation certified tally bound (ε/2)
    std::size_t replications = 0; ///< observations consumed at stop
    std::size_t looks = 0;        ///< boundary evaluations taken
    CertStop stop = CertStop::BudgetExhausted;

    double half_width() const noexcept { return (hi - lo) / 2.0; }
    bool decided() const noexcept { return stop != CertStop::BudgetExhausted; }
    bool contains(double x) const noexcept { return x >= lo && x <= hi; }
};

/// One anytime-valid confidence sequence over observations in [0, 1].
///
/// Usage: `add()` observations, then call `look()` at each stopping check;
/// every returned interval is simultaneously valid at level `delta`
/// (union bound over looks actually taken).  Calling `look()` more often
/// than needed is statistically free in validity but widens later
/// intervals (δ_k shrinks with k) — look only at batch boundaries.
///
/// Determinism: the state is a Welford accumulator plus a look counter;
/// feeding the same observations in the same order yields bit-identical
/// intervals regardless of thread count or scheduling.
class ConfidenceSequence {
public:
    /// `delta` must lie in (0, 1).  Throws ContractViolation otherwise.
    ConfidenceSequence(CsBoundary boundary, double delta);

    /// Record one observation; must lie in [0, 1] (callers clamp certified
    /// truncated-tally samples first — see docs/STATISTICS.md §4).
    void add(double x);

    /// Spend one look: the k-th call computes the half-width at budget
    /// δ_k = δ / (k (k + 1)) and returns [mean − ε_k, mean + ε_k] clipped
    /// to [0, 1].  Requires at least one observation (two for the
    /// empirical-Bernstein boundary, which divides by t − 1).
    Interval look();

    /// The half-width the *next* look would use, without spending it.
    double peek_half_width() const;

    CsBoundary boundary() const noexcept { return boundary_; }
    double delta() const noexcept { return delta_; }
    std::size_t count() const noexcept { return acc_.count(); }
    std::size_t looks() const noexcept { return looks_; }
    double mean() const noexcept { return acc_.mean(); }
    double variance() const noexcept { return acc_.variance(); }

private:
    double half_width_at(std::size_t look_index) const;

    CsBoundary boundary_;
    double delta_;
    std::size_t looks_ = 0;
    RunningStats acc_;
};

}  // namespace ld::stats
