// Confidence intervals for the Monte-Carlo estimators: normal (Wald)
// intervals on means, Wilson score intervals on proportions, and a
// percentile bootstrap for statistics without a clean variance formula.

#pragma once

#include <cstddef>
#include <span>

#include "rng/rng.hpp"

namespace ld::stats {

/// A two-sided confidence interval.
struct Interval {
    double lo = 0.0;
    double hi = 0.0;
    double width() const noexcept { return hi - lo; }
    bool contains(double x) const noexcept { return lo <= x && x <= hi; }
};

/// Wald interval mean ± z·se for the given confidence level (e.g. 0.95).
Interval mean_interval(double mean, double standard_error, double confidence);

/// Wilson score interval for a proportion with `successes` out of `trials`.
/// Well-behaved near 0 and 1, unlike the Wald interval.
Interval wilson_interval(std::size_t successes, std::size_t trials, double confidence);

/// Percentile bootstrap CI for the mean of `sample` using `resamples`
/// bootstrap replicates.
Interval bootstrap_mean_interval(rng::Rng& rng, std::span<const double> sample,
                                 std::size_t resamples, double confidence);

}  // namespace ld::stats
