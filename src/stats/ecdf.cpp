#include "stats/ecdf.hpp"

#include <algorithm>

#include "support/expect.hpp"

namespace ld::stats {

using support::expects;

Ecdf::Ecdf(std::span<const double> sample) : sorted_(sample.begin(), sample.end()) {
    expects(!sorted_.empty(), "Ecdf: empty sample");
    std::sort(sorted_.begin(), sorted_.end());
}

double Ecdf::cdf(double x) const {
    const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
    return static_cast<double>(it - sorted_.begin()) / static_cast<double>(sorted_.size());
}

double Ecdf::fraction_below(double x) const {
    const auto it = std::lower_bound(sorted_.begin(), sorted_.end(), x);
    return static_cast<double>(it - sorted_.begin()) / static_cast<double>(sorted_.size());
}

double Ecdf::fraction_above(double x) const { return 1.0 - cdf(x); }

double Ecdf::quantile(double q) const {
    expects(q >= 0.0 && q <= 1.0, "Ecdf::quantile: q out of [0,1]");
    const auto idx = static_cast<std::size_t>(q * static_cast<double>(sorted_.size() - 1));
    return sorted_[idx];
}

}  // namespace ld::stats
