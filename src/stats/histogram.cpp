#include "stats/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "support/expect.hpp"

namespace ld::stats {

using support::expects;

Histogram::Histogram(double lo, double hi, std::size_t bin_count)
    : lo_(lo), hi_(hi), bin_width_((hi - lo) / static_cast<double>(bin_count)),
      counts_(bin_count, 0) {
    expects(hi > lo, "Histogram: empty range");
    expects(bin_count > 0, "Histogram: need at least one bin");
}

void Histogram::add(double x) noexcept {
    ++total_;
    if (x < lo_) {
        ++underflow_;
        return;
    }
    if (x >= hi_) {
        ++overflow_;
        return;
    }
    auto bin = static_cast<std::size_t>((x - lo_) / bin_width_);
    bin = std::min(bin, counts_.size() - 1);  // guard FP edge at hi
    ++counts_[bin];
}

std::size_t Histogram::count(std::size_t bin) const {
    expects(bin < counts_.size(), "Histogram::count: bin out of range");
    return counts_[bin];
}

std::pair<double, double> Histogram::bin_edges(std::size_t bin) const {
    expects(bin < counts_.size(), "Histogram::bin_edges: bin out of range");
    return {lo_ + bin_width_ * static_cast<double>(bin),
            lo_ + bin_width_ * static_cast<double>(bin + 1)};
}

double Histogram::fraction(std::size_t bin) const {
    return total_ == 0 ? 0.0
                       : static_cast<double>(count(bin)) / static_cast<double>(total_);
}

std::string Histogram::render(std::size_t width) const {
    std::size_t peak = 1;
    for (std::size_t c : counts_) peak = std::max(peak, c);
    std::ostringstream os;
    for (std::size_t b = 0; b < counts_.size(); ++b) {
        const auto [lo, hi] = bin_edges(b);
        const auto bar = static_cast<std::size_t>(
            std::llround(static_cast<double>(counts_[b]) * static_cast<double>(width) /
                         static_cast<double>(peak)));
        os << '[' << lo << ", " << hi << ") " << std::string(bar, '#') << ' '
           << counts_[b] << '\n';
    }
    return os.str();
}

}  // namespace ld::stats
