#include "stats/running_stats.hpp"

#include <algorithm>
#include <cmath>

namespace ld::stats {

void RunningStats::add(double x) noexcept {
    if (n_ == 0) {
        min_ = x;
        max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
    return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::standard_error() const noexcept {
    return n_ == 0 ? 0.0 : stddev() / std::sqrt(static_cast<double>(n_));
}

void RunningStats::merge(const RunningStats& other) noexcept {
    if (other.n_ == 0) return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const double delta = other.mean_ - mean_;
    const auto n_total = static_cast<double>(n_ + other.n_);
    m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                            static_cast<double>(other.n_) / n_total;
    mean_ += delta * static_cast<double>(other.n_) / n_total;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    n_ += other.n_;
}

void PairedStats::add(double a, double b) noexcept {
    a_.add(a);
    b_.add(b);
    diff_.add(a - b);
}

}  // namespace ld::stats
