// Welford online mean/variance accumulator and a paired-difference variant
// used by the gain estimator (delegation minus direct on common random
// numbers).

#pragma once

#include <cstddef>

namespace ld::stats {

/// Numerically stable streaming mean / variance / min / max (Welford).
class RunningStats {
public:
    /// Fold one observation into the accumulator.
    void add(double x) noexcept;

    std::size_t count() const noexcept { return n_; }
    double mean() const noexcept { return mean_; }

    /// Unbiased sample variance (0 when fewer than two observations).
    double variance() const noexcept;

    /// Sample standard deviation.
    double stddev() const noexcept;

    /// Standard error of the mean.
    double standard_error() const noexcept;

    double min() const noexcept { return min_; }
    double max() const noexcept { return max_; }

    /// Merge another accumulator (parallel Welford / Chan et al.).
    void merge(const RunningStats& other) noexcept;

private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/// Accumulates paired observations (a_i, b_i) and tracks statistics of the
/// difference a − b, plus each marginal.  Used for common-random-number
/// gain estimation: a = delegated outcome, b = direct outcome, same seed.
class PairedStats {
public:
    void add(double a, double b) noexcept;

    std::size_t count() const noexcept { return diff_.count(); }
    const RunningStats& first() const noexcept { return a_; }
    const RunningStats& second() const noexcept { return b_; }
    const RunningStats& difference() const noexcept { return diff_; }

private:
    RunningStats a_;
    RunningStats b_;
    RunningStats diff_;
};

}  // namespace ld::stats
