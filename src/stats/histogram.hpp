// Fixed-bin histogram for outcome distributions (e.g. the distribution of
// correct-vote counts under delegation vs direct voting, the sink-weight
// distribution in Lemma 5 audits).

#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace ld::stats {

/// Histogram over [lo, hi) with `bin_count` equal-width bins plus underflow
/// and overflow counters.
class Histogram {
public:
    Histogram(double lo, double hi, std::size_t bin_count);

    /// Record one observation.
    void add(double x) noexcept;

    std::size_t bin_count() const noexcept { return counts_.size(); }
    std::size_t count(std::size_t bin) const;
    std::size_t underflow() const noexcept { return underflow_; }
    std::size_t overflow() const noexcept { return overflow_; }
    std::size_t total() const noexcept { return total_; }

    /// [lower, upper) edges of bin `bin`.
    std::pair<double, double> bin_edges(std::size_t bin) const;

    /// Fraction of all observations (including under/overflow) in `bin`.
    double fraction(std::size_t bin) const;

    /// Simple fixed-width ASCII rendering, one line per bin.
    std::string render(std::size_t width = 50) const;

private:
    double lo_;
    double hi_;
    double bin_width_;
    std::vector<std::size_t> counts_;
    std::size_t underflow_ = 0;
    std::size_t overflow_ = 0;
    std::size_t total_ = 0;
};

}  // namespace ld::stats
