#include "support/build_info.hpp"

// The three macros are injected for this file only via
// set_source_files_properties in src/CMakeLists.txt; fallbacks keep the
// library buildable without CMake (e.g. quick compile_commands checks).
#ifndef LIQUIDD_GIT_DESCRIBE
#define LIQUIDD_GIT_DESCRIBE "unknown"
#endif
#ifndef LIQUIDD_BUILD_TYPE
#define LIQUIDD_BUILD_TYPE "unknown"
#endif
#ifndef LIQUIDD_COMPILER
#define LIQUIDD_COMPILER "unknown"
#endif

namespace ld::support {

const BuildInfo& build_info() {
    static const BuildInfo info{LIQUIDD_GIT_DESCRIBE, LIQUIDD_BUILD_TYPE,
                                LIQUIDD_COMPILER};
    return info;
}

std::string version_line() {
    const BuildInfo& info = build_info();
    return "liquidd " + info.git_describe + " (" + info.build_type + ", " +
           info.compiler + ")";
}

json::Value build_info_json() {
    const BuildInfo& info = build_info();
    json::Object object;
    object.emplace("git_describe", json::Value(info.git_describe));
    object.emplace("build_type", json::Value(info.build_type));
    object.emplace("compiler", json::Value(info.compiler));
    return json::Value(std::move(object));
}

}  // namespace ld::support
