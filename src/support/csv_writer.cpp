#include "support/csv_writer.hpp"

#include <iomanip>
#include <sstream>
#include <stdexcept>

#include "support/expect.hpp"

namespace ld::support {

namespace {

std::string render(const Cell& cell) {
    std::ostringstream os;
    if (const auto* s = std::get_if<std::string>(&cell)) {
        os << *s;
    } else if (const auto* i = std::get_if<long long>(&cell)) {
        os << *i;
    } else {
        os << std::setprecision(17) << std::get<double>(cell);
    }
    return os.str();
}

}  // namespace

CsvWriter::CsvWriter(const std::string& path, std::vector<std::string> headers)
    : out_(path), width_(headers.size()) {
    expects(width_ > 0, "csv must have at least one column");
    if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
    write_row(headers);
}

std::string CsvWriter::escape(const std::string& field) {
    if (field.find_first_of(",\"\n\r") == std::string::npos) return field;
    std::string quoted = "\"";
    for (char ch : field) {
        if (ch == '"') quoted += "\"\"";
        else quoted += ch;
    }
    quoted += '"';
    return quoted;
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
    for (std::size_t i = 0; i < fields.size(); ++i) {
        if (i > 0) out_ << ',';
        out_ << escape(fields[i]);
    }
    out_ << '\n';
}

void CsvWriter::add_row(const std::vector<Cell>& cells) {
    expects(cells.size() == width_, "csv row width must match header width");
    std::vector<std::string> fields;
    fields.reserve(cells.size());
    for (const auto& c : cells) fields.push_back(render(c));
    write_row(fields);
    ++rows_written_;
}

void CsvWriter::close() {
    if (out_.is_open()) out_.close();
}

}  // namespace ld::support
