// Build provenance baked in at configure time: git describe, CMake build
// type, and the compiler id/version.  One block, embedded everywhere a
// machine-readable artifact leaves the process — `liquidd --version`,
// metrics reports (liquidd.metrics.v1), sweep checkpoint manifests
// (liquidd.sweep.v1), and the serve handshake (liquidd.rpc.v1) — so any
// result file can be traced back to the binary that produced it.
//
// The values arrive as compile definitions on build_info.cpp only (see
// src/CMakeLists.txt), so touching the git state never rebuilds more than
// one translation unit.

#pragma once

#include <string>

#include "support/json.hpp"

namespace ld::support {

/// What was compiled, how.
struct BuildInfo {
    std::string git_describe;  ///< `git describe --always --dirty --tags`
    std::string build_type;    ///< CMAKE_BUILD_TYPE
    std::string compiler;      ///< "<id> <version>", e.g. "GNU 13.2.0"
};

/// The singleton filled in at configure time ("unknown" fields when built
/// outside a git checkout or without CMake).
const BuildInfo& build_info();

/// One-line human rendering: "liquidd <describe> (<type>, <compiler>)".
std::string version_line();

/// The same block as a JSON object {"git_describe", "build_type",
/// "compiler"} for embedding in reports and manifests.
json::Value build_info_json();

}  // namespace ld::support
