#include "support/cpu_features.hpp"

#if defined(__x86_64__) || defined(_M_X64)
#define LIQUIDD_CPU_X86_64 1
#include <cpuid.h>
#else
#define LIQUIDD_CPU_X86_64 0
#endif

#include <cstdint>

namespace ld::support {

namespace {

#if LIQUIDD_CPU_X86_64

/// XCR0 via xgetbv.  Only legal once CPUID reports OSXSAVE, so callers
/// must gate on that bit first.
std::uint64_t read_xcr0() {
    std::uint32_t eax = 0;
    std::uint32_t edx = 0;
    __asm__ volatile("xgetbv" : "=a"(eax), "=d"(edx) : "c"(0));
    return (static_cast<std::uint64_t>(edx) << 32) | eax;
}

CpuFeatures detect() {
    CpuFeatures features;
    unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
    if (__get_cpuid(1, &eax, &ebx, &ecx, &edx) == 0) return features;
    const bool osxsave = (ecx & (1u << 27)) != 0;
    const bool avx = (ecx & (1u << 28)) != 0;
    if (!osxsave || !avx) return features;

    const std::uint64_t xcr0 = read_xcr0();
    constexpr std::uint64_t kYmmState = 0x6;    // XMM + YMM
    constexpr std::uint64_t kZmmState = 0xe6;   // + opmask, ZMM_Hi256, Hi16_ZMM
    if ((xcr0 & kYmmState) != kYmmState) return features;

    unsigned eax7 = 0, ebx7 = 0, ecx7 = 0, edx7 = 0;
    if (__get_cpuid_count(7, 0, &eax7, &ebx7, &ecx7, &edx7) == 0) return features;
    features.avx2 = (ebx7 & (1u << 5)) != 0;

    const bool avx512f = (ebx7 & (1u << 16)) != 0;
    const bool avx512dq = (ebx7 & (1u << 17)) != 0;
    features.avx512 =
        avx512f && avx512dq && (xcr0 & kZmmState) == kZmmState;
    return features;
}

#else

CpuFeatures detect() { return {}; }

#endif

}  // namespace

const CpuFeatures& cpu_features() {
    static const CpuFeatures features = detect();
    return features;
}

SimdTier best_simd_tier() {
    const CpuFeatures& features = cpu_features();
    if (features.avx512) return SimdTier::kAvx512;
    if (features.avx2) return SimdTier::kAvx2;
    return SimdTier::kScalar;
}

bool simd_tier_supported(SimdTier tier) {
    switch (tier) {
        case SimdTier::kScalar: return true;
        case SimdTier::kAvx2: return cpu_features().avx2;
        case SimdTier::kAvx512: return cpu_features().avx512;
    }
    return false;
}

const char* simd_tier_name(SimdTier tier) {
    switch (tier) {
        case SimdTier::kScalar: return "scalar";
        case SimdTier::kAvx2: return "avx2";
        case SimdTier::kAvx512: return "avx512";
    }
    return "unknown";
}

std::optional<SimdTier> parse_simd_tier(std::string_view text) {
    if (text == "auto") return best_simd_tier();
    if (text == "scalar") return SimdTier::kScalar;
    if (text == "avx2") return SimdTier::kAvx2;
    if (text == "avx512") return SimdTier::kAvx512;
    return std::nullopt;
}

}  // namespace ld::support
