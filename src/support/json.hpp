// Minimal JSON document model, recursive-descent parser, and serializer.
// The parser is enough to read google-benchmark snapshots
// (tools/bench_diff), liquidd metrics reports, and sweep specs /
// checkpoint manifests; the serializer (write/dump) round-trips a Value
// so that checkpoints re-emit bit-identically (numbers are formatted with
// a single shared function, see format_number).

#pragma once

#include <cstddef>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace ld::support::json {

/// Thrown on malformed input (with a byte offset) or on type-mismatched
/// access.
class Error : public std::runtime_error {
public:
    explicit Error(const std::string& what) : std::runtime_error(what) {}
};

class Value;
using Array = std::vector<Value>;
using Object = std::map<std::string, Value>;

/// One JSON value.  Numbers are doubles (google-benchmark emits times in
/// scientific notation; 53 bits of mantissa are plenty for ns readings).
class Value {
public:
    Value() : data_(nullptr) {}
    Value(std::nullptr_t) : data_(nullptr) {}
    Value(bool b) : data_(b) {}
    Value(double d) : data_(d) {}
    Value(std::string s) : data_(std::move(s)) {}
    Value(Array a) : data_(std::move(a)) {}
    Value(Object o) : data_(std::move(o)) {}

    bool is_null() const noexcept { return std::holds_alternative<std::nullptr_t>(data_); }
    bool is_bool() const noexcept { return std::holds_alternative<bool>(data_); }
    bool is_number() const noexcept { return std::holds_alternative<double>(data_); }
    bool is_string() const noexcept { return std::holds_alternative<std::string>(data_); }
    bool is_array() const noexcept { return std::holds_alternative<Array>(data_); }
    bool is_object() const noexcept { return std::holds_alternative<Object>(data_); }

    bool as_bool() const;
    double as_number() const;
    const std::string& as_string() const;
    const Array& as_array() const;
    const Object& as_object() const;

    /// Object member access; at() throws Error when the key is missing,
    /// find() returns nullptr.
    bool contains(const std::string& key) const;
    const Value& at(const std::string& key) const;
    const Value* find(const std::string& key) const;

    /// Deep structural equality (same alternative, equal contents).
    /// Doubles compare with ==, which is exactly the round-trip contract:
    /// parse(dump(v)) == v because format_number keeps 17 digits.
    friend bool operator==(const Value& a, const Value& b) { return a.data_ == b.data_; }

private:
    std::variant<std::nullptr_t, bool, double, std::string, Array, Object> data_;
};

/// Parse a complete JSON document (trailing whitespace allowed, trailing
/// garbage is an Error).
Value parse(std::string_view text);

/// Parse the file at `path`; Error on unreadable file or bad JSON.
Value parse_file(const std::string& path);

/// Canonical number rendering used by the serializer: round-trip precision
/// (17 significant digits, so parse(format_number(x)) == x), integral
/// doubles without a decimal point.  Throws Error on NaN/infinity, which
/// JSON cannot represent.
std::string format_number(double value);

/// `text` as a quoted, escaped JSON string literal.
std::string quote(const std::string& text);

/// Serialize `value` to `os`.  `indent` 0 emits one compact line (JSONL
/// rows); positive values pretty-print with that many spaces per level.
void write(std::ostream& os, const Value& value, int indent = 0);

/// write() into a string.
std::string dump(const Value& value, int indent = 0);

}  // namespace ld::support::json
