#include "support/signal_drain.hpp"

#include <atomic>
#include <csignal>

#include <fcntl.h>
#include <unistd.h>

#include "support/expect.hpp"

namespace ld::support {

namespace {

// Process-global signal state: flag + self-pipe.  The pipe is created
// once, lazily, before any handler can run (SignalDrain's constructor
// calls pipe_fds() first), so the handler itself never allocates.
// The flag is a lock-free atomic, not volatile sig_atomic_t: requested()
// is read from watcher threads, not just the interrupted thread, and a
// lock-free atomic store is async-signal-safe.
std::atomic<int> g_requested{0};
static_assert(std::atomic<int>::is_always_lock_free);
int g_pipe[2] = {-1, -1};

const int* pipe_fds() noexcept {
    static const bool created = [] {
        if (::pipe(g_pipe) != 0) return false;
        for (int fd : g_pipe) {
            ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL) | O_NONBLOCK);
            ::fcntl(fd, F_SETFD, FD_CLOEXEC);
        }
        return true;
    }();
    (void)created;
    return g_pipe;
}

extern "C" void drain_signal_handler(int) {
    g_requested.store(1, std::memory_order_relaxed);
    if (g_pipe[1] != -1) {
        const char byte = 1;
        [[maybe_unused]] const auto rc = ::write(g_pipe[1], &byte, 1);
    }
}

}  // namespace

SignalDrain::SignalDrain(std::initializer_list<int> signals) {
    pipe_fds();  // ensure the pipe exists before a handler can fire
    for (int sig : signals) {
        expects(saved_count_ < kMaxSignals, "SignalDrain: too many signals");
        void (*previous)(int) = std::signal(sig, drain_signal_handler);
        if (previous == SIG_ERR) continue;
        saved_[saved_count_++] = Saved{sig, previous};
    }
}

SignalDrain::SignalDrain() : SignalDrain({SIGINT, SIGTERM}) {}

SignalDrain::~SignalDrain() {
    for (int i = saved_count_ - 1; i >= 0; --i) {
        std::signal(saved_[i].signal, saved_[i].handler);
    }
}

bool SignalDrain::requested() noexcept {
    return g_requested.load(std::memory_order_relaxed) != 0;
}

int SignalDrain::wake_fd() noexcept { return pipe_fds()[0]; }

void SignalDrain::trigger() noexcept { drain_signal_handler(0); }

void SignalDrain::reset() noexcept {
    g_requested.store(0, std::memory_order_relaxed);
    char sink[64];
    while (::read(pipe_fds()[0], sink, sizeof sink) > 0) {
    }
}

}  // namespace ld::support
