#include "support/thread_pool.hpp"

#include <algorithm>
#include <utility>

#include "support/stopwatch.hpp"

namespace ld::support {

ThreadPool::ThreadPool(std::size_t workers)
    : tasks_executed_(MetricsRegistry::global().counter("pool.tasks_executed")),
      tasks_helped_(MetricsRegistry::global().counter("pool.tasks_helped")),
      busy_ns_(MetricsRegistry::global().counter("pool.busy_ns")),
      idle_ns_(MetricsRegistry::global().counter("pool.idle_ns")),
      queue_depth_(MetricsRegistry::global().gauge("pool.queue_depth")) {
    if (workers == 0) {
        workers = std::max<std::size_t>(1, std::thread::hardware_concurrency());
    }
    MetricsRegistry::global().gauge("pool.workers").set(static_cast<std::int64_t>(workers));
    workers_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i) {
        workers_.emplace_back([this] { worker_loop(); });
    }
}

ThreadPool::~ThreadPool() {
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    ready_.notify_all();
    for (auto& w : workers_) w.join();
}

ThreadPool& ThreadPool::global() {
    static ThreadPool pool;
    return pool;
}

void ThreadPool::worker_loop() {
    for (;;) {
        Job job;
        {
            const Stopwatch wait_clock;
            std::unique_lock<std::mutex> lock(mutex_);
            ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
            idle_ns_.add(wait_clock.elapsed_ns());
            if (queue_.empty()) return;  // stopping and drained
            job = std::move(queue_.front());
            queue_.pop_front();
            queue_depth_.add(-1);
        }
        const Stopwatch run_clock;
        job.group->run(job.fn);
        busy_ns_.add(run_clock.elapsed_ns());
        tasks_executed_.add(1);
    }
}

bool ThreadPool::try_help(TaskGroup& group) {
    Job job;
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        const auto it = std::find_if(queue_.begin(), queue_.end(),
                                     [&](const Job& j) { return j.group == &group; });
        if (it == queue_.end()) return false;
        job = std::move(*it);
        queue_.erase(it);
        queue_depth_.add(-1);
    }
    job.group->run(job.fn);
    tasks_helped_.add(1);
    return true;
}

void ThreadPool::enqueue(Job job) {
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(std::move(job));
        queue_depth_.add(1);
    }
    ready_.notify_one();
}

TaskGroup::~TaskGroup() {
    // Absorb any leftover exception: wait() already gave the caller a
    // chance to observe it; a throwing destructor would terminate.
    try {
        wait();
    } catch (...) {
    }
}

void TaskGroup::submit(std::function<void()> job) {
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        ++pending_;
    }
    pool_.enqueue(ThreadPool::Job{std::move(job), this});
}

void TaskGroup::wait() {
    // Help with this group's still-queued jobs instead of idling — this is
    // what makes nested waits on a shared pool deadlock-free.
    while (pool_.try_help(*this)) {
    }
    std::unique_lock<std::mutex> lock(mutex_);
    done_.wait(lock, [this] { return pending_ == 0; });
    if (error_) {
        auto error = std::exchange(error_, nullptr);
        lock.unlock();
        std::rethrow_exception(error);
    }
}

void TaskGroup::run(std::function<void()>& job) {
    try {
        job();
    } catch (...) {
        const std::lock_guard<std::mutex> lock(mutex_);
        if (!error_) error_ = std::current_exception();
    }
    // Notify under the lock: once pending_ hits zero a waiter may destroy
    // this group, so the condition variable must not be touched after the
    // lock is released.
    const std::lock_guard<std::mutex> lock(mutex_);
    --pending_;
    done_.notify_all();
}

}  // namespace ld::support
