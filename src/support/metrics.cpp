#include "support/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <sstream>
#include <string_view>

#include "support/build_info.hpp"
#include "support/json.hpp"

namespace ld::support {

namespace detail {

std::size_t thread_shard() noexcept {
    static std::atomic<std::size_t> next{0};
    thread_local const std::size_t slot =
        next.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
    return slot;
}

}  // namespace detail

// ---------------------------------------------------------------- Counter

std::uint64_t Counter::value() const noexcept {
    std::uint64_t total = 0;
    for (const auto& shard : shards_) total += shard.value.load(std::memory_order_relaxed);
    return total;
}

void Counter::reset() noexcept {
    for (auto& shard : shards_) shard.value.store(0, std::memory_order_relaxed);
}

// ------------------------------------------------------------------ Gauge

void Gauge::set(std::int64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
    bump_max(v);
}

void Gauge::add(std::int64_t delta) noexcept {
    const std::int64_t v = value_.fetch_add(delta, std::memory_order_relaxed) + delta;
    bump_max(v);
}

void Gauge::bump_max(std::int64_t v) noexcept {
    std::int64_t seen = max_.load(std::memory_order_relaxed);
    while (v > seen && !max_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
    }
}

void Gauge::reset() noexcept {
    value_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
}

// ------------------------------------------------------- LatencyHistogram

namespace {

// 1–2–5 ladder, 1 µs .. 10 s.
constexpr std::array<double, 22> kBucketBounds = {
    1e-6, 2e-6, 5e-6, 1e-5, 2e-5, 5e-5, 1e-4, 2e-4, 5e-4, 1e-3, 2e-3,
    5e-3, 1e-2, 2e-2, 5e-2, 1e-1, 2e-1, 5e-1, 1.0,  2.0,  5.0,  10.0,
};

}  // namespace

std::span<const double> LatencyHistogram::bucket_bounds() noexcept {
    static_assert(kBucketBounds.size() == kBounds);
    return kBucketBounds;
}

std::size_t LatencyHistogram::bucket_for(double seconds) noexcept {
    const auto it =
        std::lower_bound(kBucketBounds.begin(), kBucketBounds.end(), seconds);
    return static_cast<std::size_t>(it - kBucketBounds.begin());  // end() == overflow
}

void LatencyHistogram::record(double seconds) noexcept {
    Shard& shard = shards_[detail::thread_shard()];
    shard.buckets[bucket_for(seconds)].fetch_add(1, std::memory_order_relaxed);
    shard.count.fetch_add(1, std::memory_order_relaxed);
    const double ns = seconds * 1e9;
    shard.total_ns.fetch_add(
        ns > 0.0 ? static_cast<std::uint64_t>(ns) : 0, std::memory_order_relaxed);
}

std::uint64_t LatencyHistogram::count() const noexcept {
    std::uint64_t total = 0;
    for (const auto& shard : shards_) total += shard.count.load(std::memory_order_relaxed);
    return total;
}

double LatencyHistogram::total_seconds() const noexcept {
    std::uint64_t ns = 0;
    for (const auto& shard : shards_) ns += shard.total_ns.load(std::memory_order_relaxed);
    return static_cast<double>(ns) / 1e9;
}

std::vector<std::uint64_t> LatencyHistogram::bucket_counts() const {
    std::vector<std::uint64_t> counts(kBounds + 1, 0);
    for (const auto& shard : shards_) {
        for (std::size_t b = 0; b <= kBounds; ++b) {
            counts[b] += shard.buckets[b].load(std::memory_order_relaxed);
        }
    }
    return counts;
}

void LatencyHistogram::reset() noexcept {
    for (auto& shard : shards_) {
        for (auto& bucket : shard.buckets) bucket.store(0, std::memory_order_relaxed);
        shard.count.store(0, std::memory_order_relaxed);
        shard.total_ns.store(0, std::memory_order_relaxed);
    }
}

// --------------------------------------------------------- MetricsSnapshot

double MetricsSnapshot::HistogramRow::mean_seconds() const noexcept {
    return count == 0 ? 0.0 : total_seconds / static_cast<double>(count);
}

double MetricsSnapshot::HistogramRow::quantile(double q) const noexcept {
    if (count == 0) return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    const auto rank = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(count)));
    const auto bounds = LatencyHistogram::bucket_bounds();
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < buckets.size(); ++b) {
        seen += buckets[b];
        if (seen >= rank) {
            return b < bounds.size() ? bounds[b] : bounds.back();
        }
    }
    return bounds.back();
}

std::uint64_t MetricsSnapshot::counter_value(const std::string& name) const noexcept {
    for (const auto& row : counters) {
        if (row.name == name) return row.value;
    }
    return 0;
}

std::int64_t MetricsSnapshot::gauge_value(const std::string& name,
                                          std::int64_t fallback) const noexcept {
    for (const auto& row : gauges) {
        if (row.name == name) return row.value;
    }
    return fallback;
}

const MetricsSnapshot::HistogramRow* MetricsSnapshot::find_histogram(
    const std::string& name) const noexcept {
    for (const auto& row : histograms) {
        if (row.name == name) return &row;
    }
    return nullptr;
}

MetricsSnapshot MetricsSnapshot::since(const MetricsSnapshot& earlier) const {
    MetricsSnapshot delta = *this;
    delta.uptime_seconds = std::max(0.0, uptime_seconds - earlier.uptime_seconds);
    for (auto& row : delta.counters) {
        const std::uint64_t before = earlier.counter_value(row.name);
        row.value = row.value >= before ? row.value - before : 0;
    }
    for (auto& row : delta.histograms) {
        const HistogramRow* before = earlier.find_histogram(row.name);
        if (!before) continue;
        row.count = row.count >= before->count ? row.count - before->count : 0;
        row.total_seconds = std::max(0.0, row.total_seconds - before->total_seconds);
        const std::size_t n = std::min(row.buckets.size(), before->buckets.size());
        for (std::size_t b = 0; b < n; ++b) {
            row.buckets[b] = row.buckets[b] >= before->buckets[b]
                                 ? row.buckets[b] - before->buckets[b]
                                 : 0;
        }
    }
    return delta;
}

DerivedMetrics derive_metrics(const MetricsSnapshot& snapshot) {
    DerivedMetrics d;
    const double busy_s =
        static_cast<double>(snapshot.counter_value("pool.busy_ns")) / 1e9;
    const auto workers =
        static_cast<double>(snapshot.gauge_value("pool.workers", 0));
    if (workers > 0.0 && snapshot.uptime_seconds > 0.0) {
        d.pool_utilisation = busy_s / (workers * snapshot.uptime_seconds);
    }
    const auto reps = static_cast<double>(snapshot.counter_value("engine.replications"));
    const double rep_s =
        static_cast<double>(snapshot.counter_value("engine.replication_ns")) / 1e9;
    if (rep_s > 0.0) d.replications_per_sec = reps / rep_s;
    const auto reused =
        static_cast<double>(snapshot.counter_value("engine.workspace_reused"));
    const auto created =
        static_cast<double>(snapshot.counter_value("engine.workspace_created"));
    if (reused + created > 0.0) d.workspace_reuse_rate = reused / (reused + created);
    return d;
}

// ---------------------------------------------------------- MetricsRegistry

Counter& MetricsRegistry::counter(const std::string& name) {
    const std::lock_guard<std::mutex> lock(mutex_);
    auto& slot = counters_[name];
    if (!slot) slot = std::make_unique<Counter>();
    return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
    const std::lock_guard<std::mutex> lock(mutex_);
    auto& slot = gauges_[name];
    if (!slot) slot = std::make_unique<Gauge>();
    return *slot;
}

LatencyHistogram& MetricsRegistry::histogram(const std::string& name) {
    const std::lock_guard<std::mutex> lock(mutex_);
    auto& slot = histograms_[name];
    if (!slot) slot = std::make_unique<LatencyHistogram>();
    return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    MetricsSnapshot snap;
    snap.uptime_seconds = uptime_.elapsed_seconds();
    snap.counters.reserve(counters_.size());
    for (const auto& [name, metric] : counters_) {
        snap.counters.push_back({name, metric->value()});
    }
    snap.gauges.reserve(gauges_.size());
    for (const auto& [name, metric] : gauges_) {
        snap.gauges.push_back({name, metric->value(), metric->max()});
    }
    snap.histograms.reserve(histograms_.size());
    for (const auto& [name, metric] : histograms_) {
        snap.histograms.push_back(
            {name, metric->count(), metric->total_seconds(), metric->bucket_counts()});
    }
    return snap;
}

void MetricsRegistry::reset() {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [name, metric] : counters_) metric->reset();
    for (auto& [name, metric] : gauges_) metric->reset();
    for (auto& [name, metric] : histograms_) metric->reset();
    uptime_.restart();
}

MetricsRegistry& MetricsRegistry::global() {
    static MetricsRegistry registry;
    return registry;
}

// ---------------------------------------------------------------- reports

bool metrics_env_enabled() {
    const char* value = std::getenv("LIQUIDD_METRICS");
    return value != nullptr && value[0] != '\0' && std::string_view(value) != "0";
}

namespace {

std::string json_number(double v) {
    if (!std::isfinite(v)) return "null";
    std::ostringstream os;
    os.precision(17);
    os << v;
    return os.str();
}

// Metric names are C-identifier-ish ("pool.busy_ns"); escape defensively
// anyway so arbitrary registry keys cannot corrupt the document.
std::string json_string(const std::string& s) {
    std::string out = "\"";
    for (const char ch : s) {
        switch (ch) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            case '\r': out += "\\r"; break;
            default:
                if (static_cast<unsigned char>(ch) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", ch);
                    out += buf;
                } else {
                    out += ch;
                }
        }
    }
    out += '"';
    return out;
}

}  // namespace

void write_metrics_json(std::ostream& os, const MetricsSnapshot& snapshot) {
    os << "{\n";
    os << "  \"schema\": \"liquidd.metrics.v1\",\n";
    os << "  \"build\": " << json::dump(build_info_json()) << ",\n";
    os << "  \"uptime_seconds\": " << json_number(snapshot.uptime_seconds) << ",\n";

    os << "  \"counters\": {";
    for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
        const auto& row = snapshot.counters[i];
        os << (i ? "," : "") << "\n    " << json_string(row.name) << ": " << row.value;
    }
    os << (snapshot.counters.empty() ? "" : "\n  ") << "},\n";

    os << "  \"gauges\": {";
    for (std::size_t i = 0; i < snapshot.gauges.size(); ++i) {
        const auto& row = snapshot.gauges[i];
        os << (i ? "," : "") << "\n    " << json_string(row.name)
           << ": {\"value\": " << row.value << ", \"max\": " << row.max << "}";
    }
    os << (snapshot.gauges.empty() ? "" : "\n  ") << "},\n";

    const auto bounds = LatencyHistogram::bucket_bounds();
    os << "  \"histograms\": {";
    for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
        const auto& row = snapshot.histograms[i];
        os << (i ? "," : "") << "\n    " << json_string(row.name) << ": {\n";
        os << "      \"count\": " << row.count << ",\n";
        os << "      \"total_seconds\": " << json_number(row.total_seconds) << ",\n";
        os << "      \"mean_seconds\": " << json_number(row.mean_seconds()) << ",\n";
        os << "      \"p50_seconds\": " << json_number(row.quantile(0.50)) << ",\n";
        os << "      \"p90_seconds\": " << json_number(row.quantile(0.90)) << ",\n";
        os << "      \"p99_seconds\": " << json_number(row.quantile(0.99)) << ",\n";
        os << "      \"buckets\": [";
        for (std::size_t b = 0; b < row.buckets.size(); ++b) {
            const std::string le =
                b < bounds.size() ? json_number(bounds[b]) : std::string("null");
            os << (b ? ", " : "") << "{\"le_seconds\": " << le
               << ", \"count\": " << row.buckets[b] << "}";
        }
        os << "]\n    }";
    }
    os << (snapshot.histograms.empty() ? "" : "\n  ") << "},\n";

    const DerivedMetrics derived = derive_metrics(snapshot);
    os << "  \"derived\": {\n";
    os << "    \"pool_utilisation\": " << json_number(derived.pool_utilisation) << ",\n";
    os << "    \"replications_per_sec\": " << json_number(derived.replications_per_sec)
       << ",\n";
    os << "    \"workspace_reuse_rate\": " << json_number(derived.workspace_reuse_rate)
       << "\n  }\n";
    os << "}\n";
}

std::vector<std::string> metrics_table_headers() {
    return {"metric", "value", "detail"};
}

std::vector<std::vector<Cell>> metrics_table_rows(const MetricsSnapshot& snapshot) {
    std::vector<std::vector<Cell>> rows;
    rows.reserve(snapshot.counters.size() + snapshot.gauges.size() +
                 snapshot.histograms.size() + 3);
    for (const auto& row : snapshot.counters) {
        rows.push_back({row.name, static_cast<long long>(row.value), std::string{}});
    }
    for (const auto& row : snapshot.gauges) {
        rows.push_back({row.name, static_cast<long long>(row.value),
                        "max " + std::to_string(row.max)});
    }
    for (const auto& row : snapshot.histograms) {
        std::ostringstream detail;
        detail.precision(3);
        detail << "mean " << row.mean_seconds() * 1e3 << " ms, p50 "
               << row.quantile(0.50) * 1e3 << " ms, p99 " << row.quantile(0.99) * 1e3
               << " ms, total " << row.total_seconds << " s";
        rows.push_back(
            {row.name, static_cast<long long>(row.count), detail.str()});
    }
    const DerivedMetrics derived = derive_metrics(snapshot);
    rows.push_back({std::string("derived.pool_utilisation"), derived.pool_utilisation,
                    std::string("busy / (workers x uptime)")});
    rows.push_back({std::string("derived.replications_per_sec"),
                    derived.replications_per_sec, std::string{}});
    rows.push_back({std::string("derived.workspace_reuse_rate"),
                    derived.workspace_reuse_rate, std::string{}});
    return rows;
}

void print_metrics_table(std::ostream& os, const MetricsSnapshot& snapshot) {
    TablePrinter table(metrics_table_headers(), 3);
    for (auto& row : metrics_table_rows(snapshot)) table.add_row(std::move(row));
    table.print(os);
}

}  // namespace ld::support
