// A persistent worker pool with a submit/wait API — the execution engine
// under the Monte-Carlo replication loop (and any other embarrassingly
// parallel sweep).  Motivation: the evaluator previously spawned and joined
// fresh std::threads on *every* estimate call, so every cell of every
// experiment paid thread-creation latency and no workers were shared
// across cells.
//
// Design:
//  * ThreadPool owns long-lived workers (lazily sized to
//    hardware_concurrency for the shared global() pool).
//  * Work is submitted in batches through a TaskGroup; wait() blocks until
//    every task of that group has run.
//  * wait() *lends the calling thread* to its own group's still-queued
//    tasks (work-helping).  This keeps nested parallelism deadlock-free:
//    a pool task may itself submit a group to the same pool and wait on it,
//    even on a single-worker pool.
//  * Determinism is the caller's contract: tasks are identified by their
//    submission index, so pinning one RNG stream per task index yields
//    bit-identical results regardless of which OS thread runs which task.
//  * Every pool reports to the global MetricsRegistry under "pool.*":
//    tasks executed / helped, live + peak queue depth, and per-worker
//    busy/idle nanoseconds (relaxed sharded atomics — a few ns per task).

#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "support/metrics.hpp"

namespace ld::support {

class TaskGroup;

/// Persistent pool of worker threads.  Threads are started in the
/// constructor and joined in the destructor; submission happens through
/// TaskGroup.
class ThreadPool {
public:
    /// `workers == 0` sizes the pool to std::thread::hardware_concurrency()
    /// (at least one worker either way).
    explicit ThreadPool(std::size_t workers = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    std::size_t worker_count() const noexcept { return workers_.size(); }

    /// Process-wide shared pool, created on first use and sized to the
    /// hardware.  All library components default to this pool so workers
    /// are shared across experiment cells.
    static ThreadPool& global();

private:
    friend class TaskGroup;

    struct Job {
        std::function<void()> fn;
        TaskGroup* group;
    };

    void worker_loop();

    /// Pop and run one queued job belonging to `group` (work-helping).
    /// Returns false if no such job is queued.
    bool try_help(TaskGroup& group);

    void enqueue(Job job);

    std::mutex mutex_;
    std::condition_variable ready_;
    std::deque<Job> queue_;
    bool stopping_ = false;
    std::vector<std::thread> workers_;

    // Cached global-registry metrics (shared by every pool instance, so
    // counts aggregate across dedicated test pools and the global pool).
    Counter& tasks_executed_;
    Counter& tasks_helped_;
    Counter& busy_ns_;
    Counter& idle_ns_;
    Gauge& queue_depth_;
};

/// One batch of tasks on a pool.  Submit any number of jobs, then wait().
/// The destructor waits too, so a group can never outlive its jobs.
/// If a job throws, the first exception is captured and rethrown from
/// wait() on the submitting thread.
class TaskGroup {
public:
    explicit TaskGroup(ThreadPool& pool) : pool_(pool) {}
    ~TaskGroup();

    TaskGroup(const TaskGroup&) = delete;
    TaskGroup& operator=(const TaskGroup&) = delete;

    /// Queue one job for execution on the pool.
    void submit(std::function<void()> job);

    /// Block until every submitted job has finished, helping with this
    /// group's queued jobs on the calling thread.  Rethrows the first
    /// job exception, if any.
    void wait();

private:
    friend class ThreadPool;

    /// Run `job` on the current thread and account for its completion.
    void run(std::function<void()>& job);

    ThreadPool& pool_;
    std::mutex mutex_;
    std::condition_variable done_;
    std::size_t pending_ = 0;
    std::exception_ptr error_;
};

}  // namespace ld::support
