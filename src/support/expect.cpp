#include "support/expect.hpp"

#include <sstream>

namespace ld::support::detail {

void throw_contract_violation(std::string_view kind, std::string_view message,
                              const std::source_location& loc) {
    std::ostringstream os;
    os << kind << " violated: " << message << " [" << loc.file_name() << ':' << loc.line()
       << " in " << loc.function_name() << ']';
    throw ContractViolation(os.str());
}

}  // namespace ld::support::detail
