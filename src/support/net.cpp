#include "support/net.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

namespace ld::support::net {

namespace {

[[noreturn]] void fail(const std::string& what) {
    throw NetError(what + ": " + std::strerror(errno));
}

sockaddr_un unix_address(const std::string& path) {
    sockaddr_un address{};
    address.sun_family = AF_UNIX;
    if (path.empty() || path.size() >= sizeof(address.sun_path)) {
        throw NetError("unix socket path '" + path + "' empty or longer than " +
                       std::to_string(sizeof(address.sun_path) - 1) + " bytes");
    }
    std::memcpy(address.sun_path, path.c_str(), path.size() + 1);
    return address;
}

sockaddr_in loopback_address(std::uint16_t port) {
    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_port = htons(port);
    address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    return address;
}

/// Clear the way for binding a Unix socket at `path`: nothing there is
/// fine; a socket file nobody answers on (crashed previous run) is
/// unlinked; a live server or any non-socket file throws — bind must
/// never silently delete something that is still in use.
void remove_stale_unix_socket(const std::string& path, const sockaddr_un& address) {
    struct stat st {};
    if (::lstat(path.c_str(), &st) != 0) {
        if (errno == ENOENT) return;
        fail("stat('" + path + "')");
    }
    if (!S_ISSOCK(st.st_mode)) {
        throw NetError("refusing to replace '" + path +
                       "': exists and is not a socket");
    }
    const int probe = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (probe < 0) fail("socket(AF_UNIX)");
    const int connected =
        ::connect(probe, reinterpret_cast<const sockaddr*>(&address), sizeof address);
    const int connect_errno = errno;
    ::close(probe);
    if (connected == 0) {
        throw NetError("'" + path + "' is in use by a live server");
    }
    if (connect_errno != ECONNREFUSED) {
        throw NetError("cannot tell whether '" + path + "' is stale (connect: " +
                       std::strerror(connect_errno) + "); remove it manually");
    }
    if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
        fail("unlink stale socket '" + path + "'");
    }
}

}  // namespace

// Socket -------------------------------------------------------------------

Socket::~Socket() { close(); }

Socket::Socket(Socket&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}

Socket& Socket::operator=(Socket&& other) noexcept {
    if (this != &other) {
        close();
        fd_ = std::exchange(other.fd_, -1);
    }
    return *this;
}

std::size_t Socket::read_some(char* data, std::size_t size) {
    while (true) {
        const ssize_t n = ::recv(fd_, data, size, 0);
        if (n >= 0) return static_cast<std::size_t>(n);
        if (errno == EINTR) continue;
        fail("recv");
    }
}

std::optional<std::size_t> Socket::read_nonblocking(char* data, std::size_t size) {
    while (true) {
        const ssize_t n = ::recv(fd_, data, size, MSG_DONTWAIT);
        if (n >= 0) return static_cast<std::size_t>(n);
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) return std::nullopt;
        fail("recv");
    }
}

std::size_t Socket::write_nonblocking(std::string_view data) {
    while (true) {
        const ssize_t n =
            ::send(fd_, data.data(), data.size(), MSG_NOSIGNAL | MSG_DONTWAIT);
        if (n >= 0) return static_cast<std::size_t>(n);
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) return 0;
        fail("send");
    }
}

void Socket::write_all(std::string_view data, int timeout_ms) {
    if (timeout_ms < 0) {
        while (!data.empty()) {
            const ssize_t n = ::send(fd_, data.data(), data.size(), MSG_NOSIGNAL);
            if (n < 0) {
                if (errno == EINTR) continue;
                fail("send");
            }
            data.remove_prefix(static_cast<std::size_t>(n));
        }
        return;
    }

    // Bounded write: non-blocking sends, polling for writability until
    // the deadline.  The socket itself stays in blocking mode —
    // MSG_DONTWAIT scopes the non-blocking behaviour to these sends.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
    while (!data.empty()) {
        const ssize_t n =
            ::send(fd_, data.data(), data.size(), MSG_NOSIGNAL | MSG_DONTWAIT);
        if (n > 0) {
            data.remove_prefix(static_cast<std::size_t>(n));
            continue;
        }
        if (n < 0 && errno == EINTR) continue;
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                                  deadline - std::chrono::steady_clock::now())
                                  .count();
            if (left <= 0) {
                throw NetError("send: peer not reading, timed out after " +
                               std::to_string(timeout_ms) + "ms");
            }
            pollfd writable{fd_, POLLOUT, 0};
            const int ready = ::poll(
                &writable, 1, static_cast<int>(std::min<long long>(left, 60'000)));
            if (ready < 0 && errno != EINTR) fail("poll(POLLOUT)");
            continue;
        }
        fail("send");
    }
}

void Socket::shutdown_both() noexcept {
    if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::close() noexcept {
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

// LineReader ---------------------------------------------------------------

bool LineReader::read_line(std::string& line) {
    while (true) {
        if (const auto newline = buffer_.find('\n'); newline != std::string::npos) {
            line.assign(buffer_, 0, newline);
            buffer_.erase(0, newline + 1);
            if (!line.empty() && line.back() == '\r') line.pop_back();
            return true;
        }
        if (eof_) {
            if (buffer_.empty()) return false;
            line = std::move(buffer_);
            buffer_.clear();
            return true;
        }
        char chunk[4096];
        const std::size_t n = socket_->read_some(chunk, sizeof chunk);
        if (n == 0) {
            eof_ = true;
            continue;
        }
        buffer_.append(chunk, n);
    }
}

void write_line(Socket& socket, std::string_view line, int timeout_ms) {
    std::string framed;
    framed.reserve(line.size() + 1);
    framed.append(line);
    framed.push_back('\n');
    socket.write_all(framed, timeout_ms);
}

// Listener -----------------------------------------------------------------

Listener Listener::unix_domain(const std::string& path) {
    const sockaddr_un address = unix_address(path);
    remove_stale_unix_socket(path, address);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) fail("socket(AF_UNIX)");
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&address), sizeof address) != 0) {
        ::close(fd);
        fail("bind('" + path + "')");
    }
    if (::listen(fd, 64) != 0) {
        ::close(fd);
        ::unlink(path.c_str());
        fail("listen('" + path + "')");
    }
    return Listener(fd, path, 0);
}

Listener Listener::tcp_loopback(std::uint16_t port) {
    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) fail("socket(AF_INET)");
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in address = loopback_address(port);
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&address), sizeof address) != 0) {
        ::close(fd);
        fail("bind(127.0.0.1:" + std::to_string(port) + ")");
    }
    socklen_t length = sizeof address;
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&address), &length) != 0) {
        ::close(fd);
        fail("getsockname");
    }
    if (::listen(fd, 64) != 0) {
        ::close(fd);
        fail("listen(127.0.0.1)");
    }
    return Listener(fd, std::string{}, ntohs(address.sin_port));
}

Listener::~Listener() { close(); }

Listener::Listener(Listener&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      path_(std::move(other.path_)),
      port_(other.port_) {
    other.path_.clear();
}

Listener& Listener::operator=(Listener&& other) noexcept {
    if (this != &other) {
        close();
        fd_ = std::exchange(other.fd_, -1);
        path_ = std::move(other.path_);
        port_ = other.port_;
        other.path_.clear();
    }
    return *this;
}

std::optional<Socket> Listener::accept(int wake_fd) {
    while (fd_ >= 0) {
        pollfd fds[2] = {{fd_, POLLIN, 0}, {wake_fd, POLLIN, 0}};
        const nfds_t count = wake_fd >= 0 ? 2 : 1;
        const int ready = ::poll(fds, count, -1);
        if (ready < 0) {
            if (errno == EINTR) continue;  // the signal sets the wake fd
            fail("poll");
        }
        if (wake_fd >= 0 && (fds[1].revents & (POLLIN | POLLERR | POLLHUP))) {
            return std::nullopt;
        }
        if (fds[0].revents & (POLLIN | POLLERR | POLLHUP)) {
            const int client = ::accept4(fd_, nullptr, nullptr, SOCK_CLOEXEC);
            if (client < 0) {
                if (errno == EINTR || errno == ECONNABORTED) continue;
                if (errno == EBADF || errno == EINVAL) return std::nullopt;  // closed
                if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
                    errno == ENOMEM) {
                    // Out of descriptors/buffers: a load condition that
                    // clears when connections close.  Back off so the
                    // poll above does not spin on the still-pending
                    // connection, keeping the wake fd responsive.
                    pollfd wake{wake_fd, POLLIN, 0};
                    const int woke = ::poll(&wake, wake_fd >= 0 ? 1 : 0, 100);
                    if (woke > 0 && wake_fd >= 0) return std::nullopt;
                    continue;
                }
                fail("accept");
            }
            return Socket(client);
        }
    }
    return std::nullopt;
}

std::optional<Socket> Listener::try_accept(bool* exhausted) {
    if (exhausted) *exhausted = false;
    while (fd_ >= 0) {
        const int client =
            ::accept4(fd_, nullptr, nullptr, SOCK_CLOEXEC | SOCK_NONBLOCK);
        if (client >= 0) return Socket(client);
        if (errno == EINTR || errno == ECONNABORTED) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) return std::nullopt;
        if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS || errno == ENOMEM) {
            // Out of descriptors/buffers: the pending connection stays
            // queued, so a level-triggered poller would spin on it —
            // report the condition and let the caller back off.
            if (exhausted) *exhausted = true;
            return std::nullopt;
        }
        fail("accept");
    }
    return std::nullopt;
}

void Listener::close() noexcept {
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    if (!path_.empty()) {
        ::unlink(path_.c_str());
        path_.clear();
    }
}

// Clients ------------------------------------------------------------------

void set_nonblocking(int fd, bool on) {
    const int flags = ::fcntl(fd, F_GETFL);
    if (flags < 0) fail("fcntl(F_GETFL)");
    const int next = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
    if (next != flags && ::fcntl(fd, F_SETFL, next) != 0) fail("fcntl(F_SETFL)");
}

Socket connect_unix(const std::string& path) {
    const sockaddr_un address = unix_address(path);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) fail("socket(AF_UNIX)");
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&address), sizeof address) != 0) {
        ::close(fd);
        fail("connect('" + path + "')");
    }
    return Socket(fd);
}

Socket connect_tcp_loopback(std::uint16_t port) {
    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) fail("socket(AF_INET)");
    const sockaddr_in address = loopback_address(port);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&address), sizeof address) != 0) {
        ::close(fd);
        fail("connect(127.0.0.1:" + std::to_string(port) + ")");
    }
    return Socket(fd);
}

}  // namespace ld::support::net
