// Scoped control of the x86 flush-to-zero / denormals-are-zero FP mode.
//
// The tally DPs spend most of their cycles at the spreading front of the
// pmf, where each step underflows fresh subnormals out of the normal
// range — and every subnormal multiply takes a ~100-cycle microcode
// assist on current x86 cores, a 3–4× whole-tally slowdown.  Flushing
// subnormals to zero removes the assists; the induced error is bounded
// by (pmf length)·2⁻¹⁰²² ≈ 10⁻³⁰⁵ in total mass, far below both double
// rounding noise at the majority threshold and any certified ε the
// truncated kernels account for.
//
// MXCSR is per-thread state, so the guard is applied inside each DP
// driver (one save/restore per tally, not per convolution step — MXCSR
// writes serialize the pipeline).  Every kernel tier (scalar, AVX2,
// AVX-512) runs under the same mode, so the cross-tier bit-identity
// contract of `prob/convolve.hpp` is unaffected: all tiers flush the
// same values.

#pragma once

#if defined(__x86_64__) || defined(_M_X64)
#include <xmmintrin.h>
#endif

namespace ld::support {

/// RAII: enable FTZ+DAZ for the current scope, restoring the caller's
/// MXCSR on exit.  No-op on non-x86 targets.
class ScopedFlushDenormals {
public:
#if defined(__x86_64__) || defined(_M_X64)
    ScopedFlushDenormals() noexcept : saved_(_mm_getcsr()) {
        // bit 15 = FTZ (flush subnormal results), bit 6 = DAZ (treat
        // subnormal inputs as zero).
        _mm_setcsr(saved_ | 0x8040u);
    }
    ~ScopedFlushDenormals() { _mm_setcsr(saved_); }
#else
    ScopedFlushDenormals() noexcept = default;
    ~ScopedFlushDenormals() = default;
#endif
    ScopedFlushDenormals(const ScopedFlushDenormals&) = delete;
    ScopedFlushDenormals& operator=(const ScopedFlushDenormals&) = delete;

private:
#if defined(__x86_64__) || defined(_M_X64)
    unsigned int saved_;
#endif
};

}  // namespace ld::support
