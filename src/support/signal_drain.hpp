// Cooperative shutdown on SIGINT/SIGTERM, shared by every long-running
// entry point: `liquidd serve` uses it to stop accepting and drain
// in-flight requests, `liquidd sweep` to finish the current cell and
// leave a resumable checkpoint.
//
// The handler does the only two async-signal-safe things that matter:
// set a flag and write one byte to a self-pipe.  Poll loops include
// `wake_fd()` in their fd set so a signal interrupts a blocking wait
// immediately; everything else polls `requested()` at its natural
// checkpoint boundary (between sweep cells, per accept iteration).
//
// State is process-global because POSIX signal dispositions are; the
// SignalDrain object is only a scoped installer that restores the
// previous handlers on destruction, so tests can install, raise, assert,
// and leave no trace.

#pragma once

#include <initializer_list>

namespace ld::support {

/// Scoped SIGINT/SIGTERM → drain-flag installer.
class SignalDrain {
public:
    /// Install the flag-setting handler for `signals` (default SIGINT and
    /// SIGTERM), remembering the previous dispositions.
    explicit SignalDrain(std::initializer_list<int> signals);
    SignalDrain();

    /// Restore the dispositions saved at construction.
    ~SignalDrain();

    SignalDrain(const SignalDrain&) = delete;
    SignalDrain& operator=(const SignalDrain&) = delete;

    /// True once any installed signal has been delivered (or trigger()
    /// was called).  Sticky until reset().
    static bool requested() noexcept;

    /// Read end of the self-pipe: becomes readable when a drain is
    /// requested.  Include it in poll() sets; never read more than to
    /// drain it.  Valid for the life of the process.
    static int wake_fd() noexcept;

    /// Request a drain as if a signal had arrived (used by the serve
    /// `shutdown` RPC and by tests).  Async-signal-safe.
    static void trigger() noexcept;

    /// Clear the flag and drain the pipe (tests, or serving again after a
    /// completed drain).
    static void reset() noexcept;

private:
    struct Saved {
        int signal;
        void (*handler)(int);
    };
    static constexpr int kMaxSignals = 4;
    Saved saved_[kMaxSignals];
    int saved_count_ = 0;
};

}  // namespace ld::support
