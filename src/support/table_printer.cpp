#include "support/table_printer.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "support/expect.hpp"

namespace ld::support {

TablePrinter::TablePrinter(std::vector<std::string> headers, int precision)
    : headers_(std::move(headers)), precision_(precision) {
    expects(!headers_.empty(), "table must have at least one column");
    expects(precision_ >= 0 && precision_ <= 17, "precision out of range");
}

void TablePrinter::add_row(std::vector<Cell> cells) {
    expects(cells.size() == headers_.size(), "row width must match header width");
    rows_.push_back(std::move(cells));
}

std::string TablePrinter::format_cell(const Cell& cell) const {
    std::ostringstream os;
    if (const auto* s = std::get_if<std::string>(&cell)) {
        os << *s;
    } else if (const auto* i = std::get_if<long long>(&cell)) {
        os << *i;
    } else {
        os << std::fixed << std::setprecision(precision_) << std::get<double>(cell);
    }
    return os.str();
}

void TablePrinter::print(std::ostream& os) const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
    std::vector<std::vector<std::string>> rendered;
    rendered.reserve(rows_.size());
    for (const auto& row : rows_) {
        std::vector<std::string> r;
        r.reserve(row.size());
        for (std::size_t c = 0; c < row.size(); ++c) {
            r.push_back(format_cell(row[c]));
            widths[c] = std::max(widths[c], r.back().size());
        }
        rendered.push_back(std::move(r));
    }
    const auto emit_row = [&](const std::vector<std::string>& cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << (c == 0 ? "| " : " | ") << std::setw(static_cast<int>(widths[c])) << cells[c];
        }
        os << " |\n";
    };
    emit_row(headers_);
    for (std::size_t c = 0; c < widths.size(); ++c) {
        os << (c == 0 ? "|-" : "-|-") << std::string(widths[c], '-');
    }
    os << "-|\n";
    for (const auto& r : rendered) emit_row(r);
}

}  // namespace ld::support
