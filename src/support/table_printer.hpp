// Fixed-width console table emission used by the benchmark harness to print
// paper-style result tables (one row per sweep point, one column per metric).

#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace ld::support {

/// A single table cell: string, integer, or floating point.  Doubles are
/// rendered with a per-table precision; integers right-aligned.
using Cell = std::variant<std::string, long long, double>;

/// Accumulates rows and renders an aligned ASCII table.
///
/// Typical use in a bench binary:
/// ```
/// TablePrinter t({"n", "gain", "ci95"});
/// t.add_row({1000LL, 0.0123, 0.0005});
/// t.print(std::cout);
/// ```
class TablePrinter {
public:
    explicit TablePrinter(std::vector<std::string> headers, int precision = 4);

    /// Append one row; must have exactly as many cells as there are headers.
    void add_row(std::vector<Cell> cells);

    /// Number of data rows added so far.
    std::size_t row_count() const noexcept { return rows_.size(); }

    /// Render the table (headers, separator, rows) to `os`.
    void print(std::ostream& os) const;

    /// Render a single cell using this table's precision.
    std::string format_cell(const Cell& cell) const;

private:
    std::vector<std::string> headers_;
    std::vector<std::vector<Cell>> rows_;
    int precision_;
};

}  // namespace ld::support
