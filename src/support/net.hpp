// Minimal POSIX socket helpers for the serve layer and its clients:
// Unix-domain and TCP-loopback listeners, stream sockets (blocking and
// nonblocking primitives), and newline-delimited line framing.  The
// epoll reactor lives next door in support/event_loop.hpp; this header
// stays deliberately tiny — no TLS, no non-loopback TCP — because the
// serve transport is a local IPC boundary, not a network service.
//
// Everything throws NetError (with errno text) on failure; Socket and
// Listener are move-only RAII owners of their file descriptors.

#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

namespace ld::support::net {

/// Thrown on any socket-layer failure (bind, connect, accept, I/O).
class NetError : public std::runtime_error {
public:
    explicit NetError(const std::string& what) : std::runtime_error(what) {}
};

/// A connected, blocking stream socket (move-only fd owner).
class Socket {
public:
    Socket() = default;
    explicit Socket(int fd) : fd_(fd) {}
    ~Socket();

    Socket(Socket&& other) noexcept;
    Socket& operator=(Socket&& other) noexcept;
    Socket(const Socket&) = delete;
    Socket& operator=(const Socket&) = delete;

    bool valid() const noexcept { return fd_ >= 0; }
    int fd() const noexcept { return fd_; }

    /// Read up to `size` bytes; returns 0 on orderly EOF.  Retries EINTR.
    std::size_t read_some(char* data, std::size_t size);

    /// Nonblocking read for event-loop use: bytes read, 0 on orderly
    /// EOF, or nullopt when nothing is readable right now (EAGAIN).
    /// Uses MSG_DONTWAIT, so it is safe on blocking sockets too.
    std::optional<std::size_t> read_nonblocking(char* data, std::size_t size);

    /// Nonblocking write: how many bytes the kernel accepted (0 when
    /// the socket buffer is full).  Throws NetError on a hard failure
    /// (peer gone, reset).
    std::size_t write_nonblocking(std::string_view data);

    /// Write all of `data`, looping over partial writes.  Throws on a
    /// closed peer (EPIPE is an error, not a signal — callers pass
    /// MSG_NOSIGNAL).  With `timeout_ms >= 0` the write is bounded: it
    /// uses non-blocking sends and polls for writability, throwing
    /// NetError once the deadline passes — so one peer that stops
    /// reading cannot park the writing thread forever.  `timeout_ms < 0`
    /// blocks indefinitely.
    void write_all(std::string_view data, int timeout_ms = -1);

    /// shutdown(SHUT_RDWR): unblocks any thread sleeping in read_some on
    /// this socket (used to tear connections down during drain).
    void shutdown_both() noexcept;

    void close() noexcept;

private:
    int fd_ = -1;
};

/// Buffered newline framing over a Socket.  read_line strips the
/// trailing '\n' (and a preceding '\r', for telnet-style poking).
class LineReader {
public:
    explicit LineReader(Socket& socket) : socket_(&socket) {}

    /// Next line into `line`.  False on EOF with no buffered data; a
    /// final unterminated line is returned as-is.
    bool read_line(std::string& line);

private:
    Socket* socket_;
    std::string buffer_;
    bool eof_ = false;
};

/// `line` + '\n' in one write.  `timeout_ms` as in Socket::write_all.
void write_line(Socket& socket, std::string_view line, int timeout_ms = -1);

/// A bound, listening server socket: either a Unix-domain path or a TCP
/// socket bound to 127.0.0.1.
class Listener {
public:
    /// Bind and listen on a Unix-domain socket at `path`.  A leftover
    /// socket file from a crashed run is removed only after probing that
    /// nothing answers on it; a live server or a non-socket file at
    /// `path` makes this throw instead of clobbering it.  The path is
    /// unlinked again on close.
    static Listener unix_domain(const std::string& path);

    /// Bind and listen on 127.0.0.1:`port`; port 0 picks an ephemeral
    /// port, readable afterwards via port().
    static Listener tcp_loopback(std::uint16_t port);

    ~Listener();
    Listener(Listener&& other) noexcept;
    Listener& operator=(Listener&& other) noexcept;
    Listener(const Listener&) = delete;
    Listener& operator=(const Listener&) = delete;

    bool valid() const noexcept { return fd_ >= 0; }
    int fd() const noexcept { return fd_; }

    /// Bound TCP port (0 for Unix-domain listeners).
    std::uint16_t port() const noexcept { return port_; }
    const std::string& path() const noexcept { return path_; }

    /// Block until a client connects or `wake_fd` becomes readable
    /// (pass -1 for no wake fd).  Returns nullopt on wake-up or if the
    /// listener has been closed.  Descriptor exhaustion (EMFILE/ENFILE
    /// and friends) is a load condition, not an error: accept backs off
    /// briefly and retries rather than throwing.
    std::optional<Socket> accept(int wake_fd = -1);

    /// Nonblocking accept for event-loop use: the next pending client
    /// (created O_NONBLOCK), or nullopt when none is pending — which
    /// includes descriptor exhaustion (`exhausted`, when non-null, is
    /// set so the caller can back off instead of spinning on the
    /// still-pending connection).  Throws NetError on hard failures.
    std::optional<Socket> try_accept(bool* exhausted = nullptr);

    void close() noexcept;

private:
    Listener(int fd, std::string path, std::uint16_t port)
        : fd_(fd), path_(std::move(path)), port_(port) {}

    int fd_ = -1;
    std::string path_;  ///< unix path to unlink on close ("" for TCP)
    std::uint16_t port_ = 0;
};

/// Set or clear O_NONBLOCK on any descriptor.
void set_nonblocking(int fd, bool on = true);

/// Connect to a Unix-domain server socket.
Socket connect_unix(const std::string& path);

/// Connect to 127.0.0.1:`port`.
Socket connect_tcp_loopback(std::uint16_t port);

}  // namespace ld::support::net
