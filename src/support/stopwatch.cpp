#include "support/stopwatch.hpp"

namespace ld::support {

double Stopwatch::elapsed_seconds() const noexcept {
    const auto now = Clock::now();
    return std::chrono::duration<double>(now - start_).count();
}

}  // namespace ld::support
