// Wall-clock stopwatch used by the experiment harness to report per-sweep
// timings without pulling google-benchmark into table-style experiments.

#pragma once

#include <chrono>
#include <cstdint>

namespace ld::support {

/// Monotonic stopwatch.  Starts on construction; `elapsed_seconds()` may be
/// called repeatedly; `restart()` resets the origin.
class Stopwatch {
public:
    Stopwatch() noexcept : start_(Clock::now()) {}

    /// Seconds elapsed since construction or the last `restart()`.
    double elapsed_seconds() const noexcept;

    /// Milliseconds elapsed since construction or the last `restart()`.
    double elapsed_ms() const noexcept { return elapsed_seconds() * 1e3; }

    /// Integer nanoseconds elapsed — the unit the metrics counters use.
    std::uint64_t elapsed_ns() const noexcept {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - start_)
                .count());
    }

    /// Reset the stopwatch origin to now.
    void restart() noexcept { start_ = Clock::now(); }

private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

}  // namespace ld::support
