// Wall-clock stopwatch used by the experiment harness to report per-sweep
// timings without pulling google-benchmark into table-style experiments.

#pragma once

#include <chrono>

namespace ld::support {

/// Monotonic stopwatch.  Starts on construction; `elapsed_seconds()` may be
/// called repeatedly; `restart()` resets the origin.
class Stopwatch {
public:
    Stopwatch() noexcept : start_(Clock::now()) {}

    /// Seconds elapsed since construction or the last `restart()`.
    double elapsed_seconds() const noexcept;

    /// Milliseconds elapsed since construction or the last `restart()`.
    double elapsed_ms() const noexcept { return elapsed_seconds() * 1e3; }

    /// Reset the stopwatch origin to now.
    void restart() noexcept { start_ = Clock::now(); }

private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

}  // namespace ld::support
