#include "support/event_loop.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include "support/net.hpp"

namespace ld::support::net {

namespace {

[[noreturn]] void fail(const std::string& what) {
    throw NetError(what + ": " + std::strerror(errno));
}

std::uint32_t to_epoll(std::uint32_t interest) {
    std::uint32_t events = EPOLLRDHUP;  // always observe half-closes
    if (interest & kEventRead) events |= EPOLLIN;
    if (interest & kEventWrite) events |= EPOLLOUT;
    return events;
}

std::uint32_t from_epoll(std::uint32_t events) {
    std::uint32_t bits = 0;
    if (events & EPOLLIN) bits |= kEventRead;
    if (events & EPOLLOUT) bits |= kEventWrite;
    if (events & EPOLLRDHUP) bits |= kEventRdHangup;
    if (events & EPOLLHUP) bits |= kEventHangup;
    if (events & EPOLLERR) bits |= kEventError;
    return bits;
}

/// fd + registration token packed into epoll's u64 user-data word, so a
/// stale event for a recycled fd number can be told apart from a live
/// registration without any extra bookkeeping.
std::uint64_t pack(int fd, std::uint32_t token) {
    return (static_cast<std::uint64_t>(token) << 32) |
           static_cast<std::uint32_t>(fd);
}

}  // namespace

// Poller -------------------------------------------------------------------

Poller::Poller() {
    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd_ < 0) fail("epoll_create1");
}

Poller::~Poller() {
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

void Poller::add(int fd, std::uint32_t interest, std::uint32_t token) {
    epoll_event event{};
    event.events = to_epoll(interest);
    event.data.u64 = pack(fd, token);
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &event) != 0) {
        fail("epoll_ctl(ADD)");
    }
}

void Poller::modify(int fd, std::uint32_t interest, std::uint32_t token) {
    epoll_event event{};
    event.events = to_epoll(interest);
    event.data.u64 = pack(fd, token);
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &event) != 0) {
        fail("epoll_ctl(MOD)");
    }
}

void Poller::remove(int fd) noexcept {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
}

std::size_t Poller::wait(std::vector<Event>& out, int timeout_ms) {
    epoll_event events[128];
    const int ready = ::epoll_wait(epoll_fd_, events, 128, timeout_ms);
    out.clear();
    if (ready < 0) {
        if (errno == EINTR) return 0;
        fail("epoll_wait");
    }
    out.reserve(static_cast<std::size_t>(ready));
    for (int i = 0; i < ready; ++i) {
        Event event;
        event.fd = static_cast<int>(events[i].data.u64 & 0xffffffffu);
        event.token = static_cast<std::uint32_t>(events[i].data.u64 >> 32);
        event.events = from_epoll(events[i].events);
        out.push_back(event);
    }
    return static_cast<std::size_t>(ready);
}

// EventLoop ----------------------------------------------------------------

EventLoop::EventLoop() {
    wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (wake_fd_ < 0) fail("eventfd");
    poller_.add(wake_fd_, kEventRead, 0);
}

EventLoop::~EventLoop() {
    if (wake_fd_ >= 0) ::close(wake_fd_);
}

void EventLoop::add_fd(int fd, std::uint32_t interest, FdCallback callback) {
    Registration registration;
    registration.callback = std::move(callback);
    registration.interest = interest;
    registration.token = next_token_++;
    if (registration.token == 0) registration.token = next_token_++;
    poller_.add(fd, interest, registration.token);
    registrations_[fd] = std::move(registration);
    fd_gauge_.store(registrations_.size(), std::memory_order_relaxed);
}

void EventLoop::set_interest(int fd, std::uint32_t interest) {
    const auto found = registrations_.find(fd);
    if (found == registrations_.end()) return;
    if (found->second.interest == interest) return;
    poller_.modify(fd, interest, found->second.token);
    found->second.interest = interest;
}

void EventLoop::remove_fd(int fd) noexcept {
    if (registrations_.erase(fd) > 0) poller_.remove(fd);
    fd_gauge_.store(registrations_.size(), std::memory_order_relaxed);
}

bool EventLoop::watches(int fd) const {
    return registrations_.find(fd) != registrations_.end();
}

void EventLoop::post(std::function<void()> task) {
    {
        std::lock_guard<std::mutex> lock(task_mutex_);
        tasks_.push_back(std::move(task));
    }
    wake();
}

void EventLoop::set_tick(std::chrono::milliseconds period,
                         std::function<void()> on_tick) {
    tick_period_ = period;
    on_tick_ = std::move(on_tick);
}

void EventLoop::wake() noexcept {
    const std::uint64_t one = 1;
    [[maybe_unused]] const auto rc = ::write(wake_fd_, &one, sizeof one);
}

void EventLoop::run_tasks() {
    std::vector<std::function<void()>> batch;
    {
        std::lock_guard<std::mutex> lock(task_mutex_);
        batch.swap(tasks_);
    }
    for (auto& task : batch) task();
}

void EventLoop::run() {
    loop_thread_.store(std::this_thread::get_id(), std::memory_order_relaxed);
    using Clock = std::chrono::steady_clock;
    Clock::time_point next_tick =
        tick_period_.count() > 0 ? Clock::now() + tick_period_ : Clock::time_point::max();

    std::vector<Poller::Event> events;
    while (!stop_.load(std::memory_order_acquire)) {
        int timeout = -1;
        if (tick_period_.count() > 0) {
            const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                                  next_tick - Clock::now())
                                  .count();
            timeout = left <= 0 ? 0 : static_cast<int>(std::min<long long>(left, 60'000));
        }
        poller_.wait(events, timeout);

        for (const Poller::Event& event : events) {
            if (event.fd == wake_fd_) {
                std::uint64_t drained = 0;
                [[maybe_unused]] const auto rc =
                    ::read(wake_fd_, &drained, sizeof drained);
                continue;
            }
            // A callback earlier in this batch may have removed (and the
            // owner closed, and accept() recycled) this fd: deliver only
            // when the registration token still matches.
            const auto found = registrations_.find(event.fd);
            if (found == registrations_.end() || found->second.token != event.token) {
                continue;
            }
            // Invoke a copy: the callback may remove_fd its own
            // registration (a connection closing itself), which would
            // otherwise destroy the std::function mid-execution.
            const FdCallback callback = found->second.callback;
            callback(event.events);
        }

        run_tasks();

        if (tick_period_.count() > 0 && Clock::now() >= next_tick) {
            if (on_tick_) on_tick_();
            next_tick = Clock::now() + tick_period_;
        }
    }
    run_tasks();  // drain anything posted alongside the stop
    loop_thread_.store(std::thread::id{}, std::memory_order_relaxed);
}

void EventLoop::stop() {
    stop_.store(true, std::memory_order_release);
    wake();
}

}  // namespace ld::support::net
