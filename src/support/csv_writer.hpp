// Minimal RFC-4180-ish CSV emission so that bench binaries can dump their
// sweep data for external plotting alongside the console table.

#pragma once

#include <fstream>
#include <string>
#include <vector>

#include "support/table_printer.hpp"  // for Cell

namespace ld::support {

/// Streams rows of `Cell`s to a CSV file.  Quotes fields containing commas,
/// quotes, or newlines; doubles are written with full round-trip precision.
class CsvWriter {
public:
    /// Opens `path` for writing and emits the header row.
    /// Throws `std::runtime_error` if the file cannot be opened.
    CsvWriter(const std::string& path, std::vector<std::string> headers);

    /// Append one data row; must match the header width.
    void add_row(const std::vector<Cell>& cells);

    /// Flushes and closes the underlying stream (also done by destructor).
    void close();

    /// Number of data rows written.
    std::size_t row_count() const noexcept { return rows_written_; }

    /// Escape a single field per RFC 4180.
    static std::string escape(const std::string& field);

private:
    void write_row(const std::vector<std::string>& fields);

    std::ofstream out_;
    std::size_t width_;
    std::size_t rows_written_ = 0;
};

}  // namespace ld::support
