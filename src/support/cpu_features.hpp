// Runtime CPU-feature detection for the SIMD tally kernels.  Detection
// happens once (cpuid + xgetbv on x86-64, nothing elsewhere) and is the
// input to the one-time kernel dispatch in `prob/convolve_simd.cpp`.
//
// A tier is only reported as supported when both the instruction set and
// the OS-enabled register state (XCR0 bits for YMM/ZMM) are present, so
// dispatching on `best_simd_tier()` can never fault.

#pragma once

#include <optional>
#include <string_view>

namespace ld::support {

/// Kernel lane-width tiers, ordered so that numeric comparison means
/// "at least as wide".  Gauge values (`tally.kernel`) use the enum value.
enum class SimdTier : int {
    kScalar = 0,  ///< portable C++ loop, always available
    kAvx2 = 1,    ///< 256-bit doubles (4 lanes), masked gathers
    kAvx512 = 2,  ///< 512-bit doubles (8 lanes), opmask registers
};

/// Tier-relevant summary of what this host + OS combination can run.
struct CpuFeatures {
    bool avx2 = false;    ///< AVX2 ISA and OS YMM state
    bool avx512 = false;  ///< AVX-512 F+DQ ISA and OS ZMM/opmask state
};

/// Detected features, cached after the first call.
const CpuFeatures& cpu_features();

/// Widest tier this host can execute.
SimdTier best_simd_tier();

/// True when `tier` can execute on this host (kScalar always can).
bool simd_tier_supported(SimdTier tier);

/// Canonical lower-case name: "scalar" / "avx2" / "avx512".
const char* simd_tier_name(SimdTier tier);

/// Parse a `--simd` / LIQUIDD_SIMD value.  "auto" resolves to
/// `best_simd_tier()`; "scalar", "avx2", "avx512" name tiers directly
/// (whether or not the host supports them — callers decide how to fail).
/// Anything else returns nullopt.
std::optional<SimdTier> parse_simd_tier(std::string_view text);

}  // namespace ld::support
