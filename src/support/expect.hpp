// Contract-checking helpers in the spirit of the C++ Core Guidelines
// (I.6 "Prefer Expects() for expressing preconditions").
//
// We use plain functions rather than macros (Core Guidelines ES.31): the
// condition is always evaluated, and a violation throws `ContractViolation`
// carrying the caller's source location.  Contract checks guard the public
// API of every module in this library; they are cheap relative to the
// Monte-Carlo work the library performs, so they stay on in release builds.

#pragma once

#include <source_location>
#include <stdexcept>
#include <string>
#include <string_view>

namespace ld::support {

/// Thrown when a precondition (`expects`) or postcondition (`ensures`) is
/// violated.  Carries a human-readable message that includes the source
/// location of the failed check.
class ContractViolation : public std::logic_error {
public:
    explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] void throw_contract_violation(std::string_view kind,
                                           std::string_view message,
                                           const std::source_location& loc);
}  // namespace detail

/// Check a precondition.  Throws `ContractViolation` if `condition` is false.
inline void expects(bool condition,
                    std::string_view message = "precondition failed",
                    const std::source_location loc = std::source_location::current()) {
    if (!condition) detail::throw_contract_violation("Precondition", message, loc);
}

/// Check a postcondition.  Throws `ContractViolation` if `condition` is false.
inline void ensures(bool condition,
                    std::string_view message = "postcondition failed",
                    const std::source_location loc = std::source_location::current()) {
    if (!condition) detail::throw_contract_violation("Postcondition", message, loc);
}

/// Check an internal invariant.  Throws `ContractViolation` on failure.
inline void invariant(bool condition,
                      std::string_view message = "invariant failed",
                      const std::source_location loc = std::source_location::current()) {
    if (!condition) detail::throw_contract_violation("Invariant", message, loc);
}

}  // namespace ld::support
