// Epoll-based event loop for the serve layer: a thin RAII `Poller` over
// epoll(7) and a single-threaded callback `EventLoop` on top of it.
//
// The loop owns nothing but file-descriptor *registrations* — callers
// keep ownership of their fds and must remove them from the loop before
// closing (a registration carries a generation token, so an event for a
// closed-and-reused fd number can never be delivered to the wrong
// callback).  Cross-thread interaction happens through two doors only:
// post() (run a task on the loop thread; wakes the loop via an eventfd)
// and stop().  Everything else — add_fd/set_interest/remove_fd — is
// loop-thread-only, which is what keeps the registration table lock-free.
//
// This is deliberately not a general-purpose reactor: level-triggered
// only, one coarse periodic tick (write-stall sweeps, health checks),
// no timer wheel, no multi-thread dispatch.  `liquidd serve` needs to
// hold tens of thousands of mostly-idle connections with a handful of
// active ones, and level-triggered epoll plus a tick is the simplest
// thing that does that.

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

namespace ld::support::net {

/// Readiness / interest bits — a portable veneer over EPOLL* flags so
/// the serve layer never includes <sys/epoll.h> directly.
inline constexpr std::uint32_t kEventRead = 1u << 0;
inline constexpr std::uint32_t kEventWrite = 1u << 1;
/// Peer closed its write side (half-close); data may still be readable.
inline constexpr std::uint32_t kEventRdHangup = 1u << 2;
/// Full hangup: both directions are gone (close or reset).
inline constexpr std::uint32_t kEventHangup = 1u << 3;
inline constexpr std::uint32_t kEventError = 1u << 4;

/// RAII epoll instance.  add/modify/remove mirror epoll_ctl; wait fills
/// an event vector.  The `token` registered with each fd is returned
/// with its events — the EventLoop uses it to detect stale events for
/// recycled descriptor numbers.
class Poller {
public:
    struct Event {
        int fd = -1;
        std::uint32_t token = 0;
        std::uint32_t events = 0;  ///< kEvent* bits
    };

    Poller();
    ~Poller();
    Poller(const Poller&) = delete;
    Poller& operator=(const Poller&) = delete;

    void add(int fd, std::uint32_t interest, std::uint32_t token);
    void modify(int fd, std::uint32_t interest, std::uint32_t token);
    void remove(int fd) noexcept;

    /// Wait up to `timeout_ms` (-1 = forever).  Returns the events that
    /// fired; EINTR returns an empty batch.
    std::size_t wait(std::vector<Event>& out, int timeout_ms);

private:
    int epoll_fd_ = -1;
};

/// Single-threaded callback loop.  One thread calls run(); any thread
/// may post() or stop().
class EventLoop {
public:
    /// Invoked with the kEvent* readiness bits that fired.
    using FdCallback = std::function<void(std::uint32_t events)>;

    EventLoop();
    ~EventLoop();
    EventLoop(const EventLoop&) = delete;
    EventLoop& operator=(const EventLoop&) = delete;

    /// Register `fd` (loop thread, or any thread before run() starts).
    /// The callback stays registered until remove_fd.
    void add_fd(int fd, std::uint32_t interest, FdCallback callback);
    void set_interest(int fd, std::uint32_t interest);
    void remove_fd(int fd) noexcept;
    bool watches(int fd) const;

    /// Queue `task` for the loop thread and wake it.  Thread-safe;
    /// tasks run in post order, after the current event batch.
    void post(std::function<void()> task);

    /// Coarse periodic callback on the loop thread (0 = no tick).
    /// Loop-thread-only (or before run()).
    void set_tick(std::chrono::milliseconds period, std::function<void()> on_tick);

    /// Dispatch events and tasks until stop().  Runs on the caller's
    /// thread; reentry is a bug.
    void run();

    /// Ask the loop to exit after the current batch.  Thread-safe.
    void stop();

    std::size_t fd_count() const noexcept {
        return fd_gauge_.load(std::memory_order_relaxed);
    }
    bool on_loop_thread() const noexcept {
        return std::this_thread::get_id() == loop_thread_.load(std::memory_order_relaxed);
    }

private:
    struct Registration {
        FdCallback callback;
        std::uint32_t interest = 0;
        std::uint32_t token = 0;
    };

    void wake() noexcept;
    void run_tasks();

    Poller poller_;
    int wake_fd_ = -1;  ///< eventfd: post()/stop() → epoll_wait wakeup

    std::unordered_map<int, Registration> registrations_;  ///< loop thread only
    std::uint32_t next_token_ = 1;
    std::atomic<std::size_t> fd_gauge_{0};

    std::mutex task_mutex_;
    std::vector<std::function<void()>> tasks_;

    std::chrono::milliseconds tick_period_{0};
    std::function<void()> on_tick_;

    std::atomic<bool> stop_{false};
    std::atomic<std::thread::id> loop_thread_{};
};

}  // namespace ld::support::net
