// Run-time observability for the replication engine: a process-wide
// registry of named counters, gauges, and fixed-bucket latency histograms,
// instrumented throughout the hot path (thread pool, replication engine,
// evaluator, experiment harness) and rendered as an end-of-run report —
// `liquidd --metrics-out <file>.json` for machines, the LIQUIDD_METRICS=1
// table block for humans.
//
// Concurrency model: every metric is *sharded per worker*.  Writers touch
// only their own thread's cache-line-padded shard with relaxed atomics, so
// instrumentation costs a handful of nanoseconds and never serialises the
// replication loop; readers aggregate across shards on demand.  Metric
// objects are created on first lookup and live as long as the registry —
// hot-path code caches the returned reference once and never pays the
// name lookup again.  `reset()` zeroes values in place, so cached
// references stay valid.

#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "support/stopwatch.hpp"
#include "support/table_printer.hpp"  // for Cell

namespace ld::support {

namespace detail {

/// Number of per-worker shards per metric.  Threads are assigned shard
/// slots round-robin on first use, so up to kShards writers proceed with
/// zero contention; beyond that, slots are shared (still correct, merely
/// contended).
inline constexpr std::size_t kMetricShards = 16;

/// The calling thread's shard slot (stable for the thread's lifetime).
std::size_t thread_shard() noexcept;

}  // namespace detail

/// Monotonic event counter (tasks executed, replications run, busy
/// nanoseconds, ...).  Sharded; `value()` sums the shards.
class Counter {
public:
    void add(std::uint64_t delta = 1) noexcept {
        shards_[detail::thread_shard()].value.fetch_add(delta, std::memory_order_relaxed);
    }

    /// Aggregate over all shards.
    std::uint64_t value() const noexcept;

    /// Zero every shard (concurrent adds may interleave; best-effort).
    void reset() noexcept;

private:
    struct alignas(64) Shard {
        std::atomic<std::uint64_t> value{0};
    };
    std::array<Shard, detail::kMetricShards> shards_{};
};

/// Last-written instantaneous value (queue depth, worker count) with a
/// high-water mark.  Not sharded: gauges are written rarely compared to
/// counters and a single atomic keeps "current value" meaningful.
class Gauge {
public:
    void set(std::int64_t v) noexcept;
    void add(std::int64_t delta) noexcept;

    std::int64_t value() const noexcept { return value_.load(std::memory_order_relaxed); }
    std::int64_t max() const noexcept { return max_.load(std::memory_order_relaxed); }

    void reset() noexcept;

private:
    void bump_max(std::int64_t v) noexcept;

    std::atomic<std::int64_t> value_{0};
    std::atomic<std::int64_t> max_{0};
};

/// Fixed-bucket latency histogram over a 1–2–5 ladder from 1 µs to 10 s,
/// plus an overflow bucket.  Sharded like Counter; `record()` is a couple
/// of relaxed atomic increments.
class LatencyHistogram {
public:
    /// Upper bucket bounds in seconds, strictly increasing.  An
    /// observation lands in the first bucket whose bound is >= the value;
    /// values above the last bound land in the overflow bucket.
    static std::span<const double> bucket_bounds() noexcept;

    /// Bucket index for an observation (== bucket_bounds().size() for
    /// overflow).  Negative values clamp into bucket 0.
    static std::size_t bucket_for(double seconds) noexcept;

    void record(double seconds) noexcept;

    std::uint64_t count() const noexcept;
    double total_seconds() const noexcept;

    /// Aggregated per-bucket counts; size bucket_bounds().size() + 1, the
    /// last entry being the overflow bucket.
    std::vector<std::uint64_t> bucket_counts() const;

    void reset() noexcept;

private:
    static constexpr std::size_t kBounds = 22;

    struct alignas(64) Shard {
        std::array<std::atomic<std::uint64_t>, kBounds + 1> buckets{};
        std::atomic<std::uint64_t> count{0};
        std::atomic<std::uint64_t> total_ns{0};
    };
    std::array<Shard, detail::kMetricShards> shards_{};
};

/// A point-in-time aggregation of a registry, cheap to copy and diff.
struct MetricsSnapshot {
    struct CounterRow {
        std::string name;
        std::uint64_t value = 0;
    };
    struct GaugeRow {
        std::string name;
        std::int64_t value = 0;
        std::int64_t max = 0;
    };
    struct HistogramRow {
        std::string name;
        std::uint64_t count = 0;
        double total_seconds = 0.0;
        /// Aligned with LatencyHistogram::bucket_bounds(); last = overflow.
        std::vector<std::uint64_t> buckets;

        double mean_seconds() const noexcept;
        /// Conservative quantile estimate: the upper bound of the bucket
        /// containing the q-th observation (0 if empty).
        double quantile(double q) const noexcept;
    };

    double uptime_seconds = 0.0;
    std::vector<CounterRow> counters;      ///< sorted by name
    std::vector<GaugeRow> gauges;          ///< sorted by name
    std::vector<HistogramRow> histograms;  ///< sorted by name

    /// Value of a named counter (0 when absent).
    std::uint64_t counter_value(const std::string& name) const noexcept;
    /// Value of a named gauge (`fallback` when absent).
    std::int64_t gauge_value(const std::string& name, std::int64_t fallback = 0) const noexcept;
    const HistogramRow* find_histogram(const std::string& name) const noexcept;

    /// Counter and histogram deltas relative to `earlier` (gauges keep
    /// their current value/max).  Metrics absent from `earlier` are kept
    /// as-is.
    MetricsSnapshot since(const MetricsSnapshot& earlier) const;
};

/// Quantities computed *from* a snapshot rather than measured directly.
struct DerivedMetrics {
    /// pool.busy_ns / (pool.workers × uptime) — fraction of worker-seconds
    /// spent running tasks.
    double pool_utilisation = 0.0;
    /// engine.replications / engine.replication_ns — Monte-Carlo
    /// throughput over time spent inside estimate calls.
    double replications_per_sec = 0.0;
    /// engine.workspace_reused / (reused + created) — how often a
    /// replication chunk found a warm per-worker workspace.
    double workspace_reuse_rate = 0.0;
};

DerivedMetrics derive_metrics(const MetricsSnapshot& snapshot);

/// Thread-safe name → metric registry.  Lookup takes a mutex, so callers
/// on the hot path hoist the returned reference out of their loops.
class MetricsRegistry {
public:
    MetricsRegistry() = default;

    MetricsRegistry(const MetricsRegistry&) = delete;
    MetricsRegistry& operator=(const MetricsRegistry&) = delete;

    Counter& counter(const std::string& name);
    Gauge& gauge(const std::string& name);
    LatencyHistogram& histogram(const std::string& name);

    MetricsSnapshot snapshot() const;

    /// Zero every registered metric in place.  References handed out by
    /// counter()/gauge()/histogram() remain valid.
    void reset();

    /// Process-wide registry all built-in instrumentation reports to.
    static MetricsRegistry& global();

private:
    mutable std::mutex mutex_;
    Stopwatch uptime_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<LatencyHistogram>> histograms_;
};

/// True when the LIQUIDD_METRICS environment variable is set to a value
/// other than "" or "0" — the toggle for the human-readable metrics block
/// appended to bench tables and CLI runs.
bool metrics_env_enabled();

/// Machine-readable report (schema "liquidd.metrics.v1"): counters,
/// gauges, histograms with bucket arrays and quantile estimates, plus the
/// derived block.  Parses back with ld::support::json.
void write_metrics_json(std::ostream& os, const MetricsSnapshot& snapshot);

/// Table rows shared by the console block (TablePrinter) and the CSV
/// mirror (CsvWriter): one row per metric plus the derived quantities.
std::vector<std::string> metrics_table_headers();
std::vector<std::vector<Cell>> metrics_table_rows(const MetricsSnapshot& snapshot);

/// Render the snapshot as an aligned table on `os`.
void print_metrics_table(std::ostream& os, const MetricsSnapshot& snapshot);

}  // namespace ld::support
