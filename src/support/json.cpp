#include "support/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <sstream>

namespace ld::support::json {

namespace {

[[noreturn]] void type_error(const char* wanted) {
    throw Error(std::string("json: value is not ") + wanted);
}

class Parser {
public:
    explicit Parser(std::string_view text) : text_(text) {}

    Value parse_document() {
        Value v = parse_value();
        skip_whitespace();
        if (pos_ != text_.size()) fail("trailing garbage after document");
        return v;
    }

private:
    Value parse_value() {
        skip_whitespace();
        if (pos_ >= text_.size()) fail("unexpected end of input");
        switch (text_[pos_]) {
            case '{': return parse_object();
            case '[': return parse_array();
            case '"': return Value(parse_string());
            case 't': expect_word("true"); return Value(true);
            case 'f': expect_word("false"); return Value(false);
            case 'n': expect_word("null"); return Value(nullptr);
            default: return parse_number();
        }
    }

    Value parse_object() {
        consume('{');
        Object object;
        skip_whitespace();
        if (peek() == '}') {
            ++pos_;
            return Value(std::move(object));
        }
        for (;;) {
            skip_whitespace();
            std::string key = parse_string();
            skip_whitespace();
            consume(':');
            object.emplace(std::move(key), parse_value());
            skip_whitespace();
            const char ch = peek();
            if (ch == ',') {
                ++pos_;
                continue;
            }
            if (ch == '}') {
                ++pos_;
                return Value(std::move(object));
            }
            fail("expected ',' or '}' in object");
        }
    }

    Value parse_array() {
        consume('[');
        Array array;
        skip_whitespace();
        if (peek() == ']') {
            ++pos_;
            return Value(std::move(array));
        }
        for (;;) {
            array.push_back(parse_value());
            skip_whitespace();
            const char ch = peek();
            if (ch == ',') {
                ++pos_;
                continue;
            }
            if (ch == ']') {
                ++pos_;
                return Value(std::move(array));
            }
            fail("expected ',' or ']' in array");
        }
    }

    std::string parse_string() {
        consume('"');
        std::string out;
        for (;;) {
            if (pos_ >= text_.size()) fail("unterminated string");
            const char ch = text_[pos_++];
            if (ch == '"') return out;
            if (ch != '\\') {
                out += ch;
                continue;
            }
            if (pos_ >= text_.size()) fail("unterminated escape");
            const char esc = text_[pos_++];
            switch (esc) {
                case '"': out += '"'; break;
                case '\\': out += '\\'; break;
                case '/': out += '/'; break;
                case 'b': out += '\b'; break;
                case 'f': out += '\f'; break;
                case 'n': out += '\n'; break;
                case 'r': out += '\r'; break;
                case 't': out += '\t'; break;
                case 'u': {
                    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        const char hex = text_[pos_++];
                        code <<= 4;
                        if (hex >= '0' && hex <= '9') code |= unsigned(hex - '0');
                        else if (hex >= 'a' && hex <= 'f') code |= unsigned(hex - 'a' + 10);
                        else if (hex >= 'A' && hex <= 'F') code |= unsigned(hex - 'A' + 10);
                        else fail("bad hex digit in \\u escape");
                    }
                    // Encode as UTF-8 (surrogate pairs are passed through
                    // as two 3-byte sequences — fine for metric names and
                    // benchmark ids, which are ASCII in practice).
                    if (code < 0x80) {
                        out += static_cast<char>(code);
                    } else if (code < 0x800) {
                        out += static_cast<char>(0xC0 | (code >> 6));
                        out += static_cast<char>(0x80 | (code & 0x3F));
                    } else {
                        out += static_cast<char>(0xE0 | (code >> 12));
                        out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
                        out += static_cast<char>(0x80 | (code & 0x3F));
                    }
                    break;
                }
                default: fail("unknown escape character");
            }
        }
    }

    Value parse_number() {
        const std::size_t start = pos_;
        if (peek() == '-') ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
                text_[pos_] == '+' || text_[pos_] == '-')) {
            ++pos_;
        }
        if (pos_ == start) fail("expected a value");
        const std::string token(text_.substr(start, pos_ - start));
        char* end = nullptr;
        const double parsed = std::strtod(token.c_str(), &end);
        if (end != token.c_str() + token.size()) fail("malformed number");
        return Value(parsed);
    }

    void expect_word(std::string_view word) {
        if (text_.substr(pos_, word.size()) != word) fail("unexpected token");
        pos_ += word.size();
    }

    void skip_whitespace() {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
                text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    char peek() const {
        if (pos_ >= text_.size()) fail("unexpected end of input");
        return text_[pos_];
    }

    void consume(char expected) {
        if (pos_ >= text_.size() || text_[pos_] != expected) {
            fail(std::string("expected '") + expected + "'");
        }
        ++pos_;
    }

    [[noreturn]] void fail(const std::string& message) const {
        throw Error("json: " + message + " at byte " + std::to_string(pos_));
    }

    std::string_view text_;
    std::size_t pos_ = 0;
};

}  // namespace

bool Value::as_bool() const {
    if (!is_bool()) type_error("a bool");
    return std::get<bool>(data_);
}

double Value::as_number() const {
    if (!is_number()) type_error("a number");
    return std::get<double>(data_);
}

const std::string& Value::as_string() const {
    if (!is_string()) type_error("a string");
    return std::get<std::string>(data_);
}

const Array& Value::as_array() const {
    if (!is_array()) type_error("an array");
    return std::get<Array>(data_);
}

const Object& Value::as_object() const {
    if (!is_object()) type_error("an object");
    return std::get<Object>(data_);
}

bool Value::contains(const std::string& key) const { return find(key) != nullptr; }

const Value& Value::at(const std::string& key) const {
    const Value* v = find(key);
    if (!v) throw Error("json: missing key '" + key + "'");
    return *v;
}

const Value* Value::find(const std::string& key) const {
    if (!is_object()) type_error("an object");
    const auto& object = std::get<Object>(data_);
    const auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
}

Value parse(std::string_view text) { return Parser(text).parse_document(); }

Value parse_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw Error("json: cannot open '" + path + "'");
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return parse(buffer.str());
}

std::string format_number(double value) {
    if (!std::isfinite(value)) throw Error("json: cannot serialize non-finite number");
    std::ostringstream os;
    os << std::setprecision(17) << value;
    return os.str();
}

std::string quote(const std::string& text) {
    std::string out = "\"";
    for (const char raw : text) {
        const auto ch = static_cast<unsigned char>(raw);
        switch (ch) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (ch < 0x20) {
                    static const char hex[] = "0123456789abcdef";
                    out += "\\u00";
                    out += hex[ch >> 4];
                    out += hex[ch & 0xf];
                } else {
                    out += raw;
                }
        }
    }
    out += '"';
    return out;
}

namespace {

void write_value(std::ostream& os, const Value& value, int indent, int depth) {
    const auto newline_pad = [&](int levels) {
        if (indent <= 0) return;
        os << '\n' << std::string(static_cast<std::size_t>(indent) * levels, ' ');
    };
    if (value.is_null()) {
        os << "null";
    } else if (value.is_bool()) {
        os << (value.as_bool() ? "true" : "false");
    } else if (value.is_number()) {
        os << format_number(value.as_number());
    } else if (value.is_string()) {
        os << quote(value.as_string());
    } else if (value.is_array()) {
        const Array& array = value.as_array();
        if (array.empty()) {
            os << "[]";
            return;
        }
        os << '[';
        for (std::size_t i = 0; i < array.size(); ++i) {
            if (i) os << (indent > 0 ? "," : ", ");
            newline_pad(depth + 1);
            write_value(os, array[i], indent, depth + 1);
        }
        newline_pad(depth);
        os << ']';
    } else {
        const Object& object = value.as_object();
        if (object.empty()) {
            os << "{}";
            return;
        }
        os << '{';
        std::size_t i = 0;
        for (const auto& [key, member] : object) {
            if (i++) os << (indent > 0 ? "," : ", ");
            newline_pad(depth + 1);
            os << quote(key) << ": ";
            write_value(os, member, indent, depth + 1);
        }
        newline_pad(depth);
        os << '}';
    }
}

}  // namespace

void write(std::ostream& os, const Value& value, int indent) {
    write_value(os, value, indent, 0);
}

std::string dump(const Value& value, int indent) {
    std::ostringstream os;
    write(os, value, indent);
    return os.str();
}

}  // namespace ld::support::json
